// Per-flow fairness ("TCP") baseline: network-wide max-min fair sharing
// over individual flows, agnostic to the coflow abstraction (paper
// Sec. II-B / III-B). This is the fluid-model steady state of many TCP
// flows sharing the fabric edge links: highest utilization of all policies
// (Fig. 5b) but no application-level isolation — a coflow with more flows
// grabs proportionally more bandwidth.
#pragma once

#include <memory>
#include <vector>

#include "alloc/kernel_scratch.h"
#include "alloc/shard.h"
#include "alloc/waterfill.h"
#include "obs/perf.h"
#include "sched/scheduler.h"

namespace ncdrf {

class PerFlowScheduler : public Scheduler {
 public:
  explicit PerFlowScheduler(SchedulerOptions options = {})
      : runtime_(ShardRuntime::create(options)) {}

  std::string name() const override { return "TCP"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;
  const SchedPerf* perf_counters() const override { return &perf_; }

 private:
  // Water-filling kernel plus scratch, reused across allocate() calls so
  // the hot path performs no per-call vector growth once warmed up. The
  // serial path solves directly over the gathered SoA columns; the AoS
  // flow records are built only for the sharded solver.
  WaterfillKernel kernel_;
  KernelScratch scratch_;
  std::unique_ptr<ShardRuntime> runtime_;  // null on the serial path
  ShardedWaterfill sharded_;
  std::vector<WaterfillFlow> flows_;
  std::vector<double> capacities_;
  std::vector<double> rates_;
  SchedPerf perf_;
};

}  // namespace ncdrf
