// Per-flow fairness ("TCP") baseline: network-wide max-min fair sharing
// over individual flows, agnostic to the coflow abstraction (paper
// Sec. II-B / III-B). This is the fluid-model steady state of many TCP
// flows sharing the fabric edge links: highest utilization of all policies
// (Fig. 5b) but no application-level isolation — a coflow with more flows
// grabs proportionally more bandwidth.
#pragma once

#include "sched/scheduler.h"

namespace ncdrf {

class PerFlowScheduler : public Scheduler {
 public:
  std::string name() const override { return "TCP"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;
};

}  // namespace ncdrf
