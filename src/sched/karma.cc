#include "sched/karma.h"

#include <algorithm>
#include <cstddef>

#include "common/check.h"

namespace ncdrf {

void KarmaScheduler::on_reset(const Fabric& fabric) {
  KernelScheduler::on_reset(fabric);
  live_.clear();
  credits_bits_.clear();
  used_bps_.clear();
  last_now_ = -1.0;
}

Allocation KarmaScheduler::allocate(const ScheduleInput& input) {
  AllocScope scope(perf_);
  const Fabric& fabric = *input.fabric;
  sync(input);

  // Active entities and their live-flow counts, from the snapshot (same
  // coflow-major order the gather below walks).
  live_.clear();
  for (const ActiveCoflow& coflow : input.coflows) {
    live_[key(coflow)] += static_cast<int>(coflow.flows.size());
  }

  Allocation alloc;
  if (live_.empty()) {
    last_now_ = input.now;
    used_bps_.clear();
    return alloc;
  }

  // Equal share on aggregate egress capacity — the reference rate credits
  // are earned and spent against.
  double total_cap = 0.0;
  for (MachineId m = 0; m < fabric.num_machines(); ++m) {
    total_cap += fabric.capacity(fabric.uplink(m));
  }
  const double fair_bps = total_cap / static_cast<double>(live_.size());
  const double cap_bits = options_.credit_cap_s * fair_bps;

  // Credit pass: donors (used < fair share since the last allocation)
  // bank the slack, borrowers pay it down; banks clamp to [0, cap].
  const double dt = last_now_ >= 0.0 ? std::max(input.now - last_now_, 0.0)
                                     : 0.0;
  if (dt > 0.0) {
    for (const auto& [k, n] : live_) {
      (void)n;
      const auto used = used_bps_.find(k);
      const double used_rate = used != used_bps_.end() ? used->second : 0.0;
      double& bank = credits_bits_[k];
      bank = std::clamp(bank + dt * (fair_bps - used_rate), 0.0, cap_bits);
    }
  }
  last_now_ = input.now;
  // Per-coflow fallback entities never return once their coflow leaves;
  // drop their banks so unattributed workloads cannot grow state forever.
  std::erase_if(credits_bits_, [&](const auto& entry) {
    return entry.first >= (1LL << 32) && !live_.contains(entry.first);
  });

  capacities_.resize(static_cast<std::size_t>(fabric.num_links()));
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    capacities_[static_cast<std::size_t>(i)] = fabric.capacity(i);
  }

  // Weight column: each flow claims W_t / n_t so the tenant's aggregate
  // claim is W_t — invariant under splitting demand across coflows/flows.
  const FlowTable& table =
      scratch_.gather(input, /*state=*/nullptr, GatherCounts::kNone);
  double* weight = scratch_.arena().alloc<double>(table.num_flows);
  std::size_t row = 0;
  for (const ActiveCoflow& coflow : input.coflows) {
    const long long k = key(coflow);
    const double bank =
        cap_bits > 0.0 ? credits_bits_[k] / cap_bits : 0.0;
    const double w = (1.0 + options_.borrow_boost * bank) /
                     static_cast<double>(live_.at(k));
    for (std::size_t f = 0; f < coflow.flows.size(); ++f) weight[row++] = w;
  }
  const WaterfillProblem problem{table.num_flows, table.up, table.dn,
                                 weight};
  kernel_.solve(fabric, problem, capacities_, /*link_mask=*/nullptr,
                table.rate);
  KernelScratch::commit(table, alloc);

  // Record realized per-entity rates for the next credit pass.
  used_bps_.clear();
  row = 0;
  for (const ActiveCoflow& coflow : input.coflows) {
    double sum = 0.0;
    for (std::size_t f = 0; f < coflow.flows.size(); ++f) {
      sum += table.rate[row++];
    }
    used_bps_[key(coflow)] += sum;
  }
  return alloc;
}

}  // namespace ncdrf
