// Network-wide (weighted) max-min fair water-filling over individual flows.
//
// This is both the "TCP" per-flow fairness baseline's core and the residual
// filling stage reused by Aalo and Varys: progressive filling where every
// unfrozen flow's rate grows in proportion to its weight until some link
// saturates, freezing the flows crossing that link (classic bottleneck
// algorithm, cf. Bertsekas & Gallager §6.5.2).
//
// The solver itself lives in the allocation-kernel layer
// (alloc/waterfill.h, a saturation-heap kernel); these free functions are
// thin convenience wrappers over one-shot kernel instances for callers
// without per-call state. Policies on the allocate() hot path hold a
// WaterfillKernel / ResidualBackfill member instead and reuse its scratch.
#pragma once

#include <vector>

#include "alloc/waterfill.h"
#include "sched/scheduler.h"

namespace ncdrf {

// Flow descriptor shared with the kernel layer.
using MaxMinFlow = WaterfillFlow;

// Computes the weighted max-min rates for `flows` given per-link available
// capacity `available_bps` (indexed by LinkId; entries may be 0). Returns
// rates index-aligned with `flows`. The allocation saturates every link
// that constrains any flow (work-conserving in the max-min sense).
std::vector<double> weighted_max_min(const Fabric& fabric,
                                     const std::vector<MaxMinFlow>& flows,
                                     const std::vector<double>& available_bps);

// Adds max-min rates over the *residual* capacity left by `alloc` to every
// active flow in the snapshot, in place. Used as a work-conserving
// last-pass by priority schedulers.
void max_min_backfill(const ScheduleInput& input, Allocation& alloc);

}  // namespace ncdrf
