// Karma: credit-based tenant fairness (Vuppalapati et al., "Karma:
// Resource Allocation for Dynamic Demands", arXiv 2305.17222), adapted to
// coflow bandwidth as the registry's strategy-resistant baseline.
//
// Two mechanisms compose:
//
//   1. Per-*tenant* weighted max-min. Every fairness entity is the
//      submitting tenant (ActiveCoflow::tenant; unattributed coflows fall
//      back to a per-coflow entity, degrading to per-coflow fairness).
//      Each flow's waterfill weight is W_t / n_t where n_t is the
//      tenant's live flow count, so a tenant's aggregate claim is W_t no
//      matter how many coflows or flows it splits its demand into — the
//      flow-splitting and dust-padding channels that game NC-DRF's
//      per-coflow accounting are structurally closed.
//
//   2. Donor/borrower credits. Between allocations each active tenant
//      accrues credits at (fair share − attained rate): a tenant using
//      less than its equal share *donates* the slack and banks credits; a
//      tenant drawing more *borrows* and pays them down. Banked credits
//      (clamped to [0, credit_cap_s · fair share]) boost the tenant's
//      weight up to (1 + borrow_boost), so donors reclaim their deferred
//      share later — the paper's long-term fairness under dynamic
//      demands, without any knowledge of flow sizes.
//
// Non-clairvoyant: only endpoints, flow counts and realized rates feed
// the mechanism. Deterministic: all per-tenant state lives in ordered
// maps and the update order is the snapshot's coflow order.
#pragma once

#include <map>
#include <string>

#include "alloc/kernel_scheduler.h"
#include "alloc/kernel_scratch.h"
#include "alloc/waterfill.h"

namespace ncdrf {

struct KarmaOptions {
  // Credit bank cap, in seconds of fair-share bandwidth. Bounds how much
  // deferred share a donor can reclaim (Karma's bounded credits).
  double credit_cap_s = 10.0;
  // Weight boost at a full credit bank: W_t = 1 + borrow_boost · b_t
  // with b_t = credits / cap in [0, 1].
  double borrow_boost = 1.0;
};

class KarmaScheduler : public KernelScheduler {
 public:
  explicit KarmaScheduler(KarmaOptions options = {})
      : KernelScheduler(/*count_finished_flows=*/false), options_(options) {}

  std::string name() const override { return "Karma"; }
  bool clairvoyant() const override { return false; }
  Allocation allocate(const ScheduleInput& input) override;

  void on_reset(const Fabric& fabric) override;

 private:
  // Fairness entity: the tenant when attributed, else a per-coflow
  // sentinel key well above any real tenant id.
  static long long key(const ActiveCoflow& coflow) {
    return coflow.tenant >= 0
               ? static_cast<long long>(coflow.tenant)
               : (1LL << 32) + static_cast<long long>(coflow.id);
  }

  const KarmaOptions options_;

  // Per-entity state, all ordered for deterministic iteration. Credits
  // accrue only while an entity has live flows; an absent tenant's bank
  // freezes until it returns, and per-coflow fallback entities are
  // dropped when their coflow leaves (coflows never return).
  std::map<long long, int> live_;             // live flows, this snapshot
  std::map<long long, double> credits_bits_;  // banked donor credits
  std::map<long long, double> used_bps_;      // realized rate last epoch
  double last_now_ = -1.0;

  WaterfillKernel kernel_;
  KernelScratch scratch_;
  std::vector<double> capacities_;
};

}  // namespace ncdrf
