// The paper's work-conserving backfilling stage (Sec. IV-B, "Retaining Work
// Conservation"): unused bandwidth on each link is divided evenly among all
// active flows on that link, and each flow receives the minimum of its
// uplink and downlink shares:
//
//   w_k^{ij} = min( u^i / Σ_k n_k^i ,  u^j / Σ_k n_k^j )
//
// where u^i is the unused bandwidth on link i. One round is what
// Algorithm 1 describes; additional rounds converge toward full
// utilization and are exposed for the ablation bench.
#pragma once

#include <vector>

#include "sched/scheduler.h"

namespace ncdrf {

// Runs `rounds` rounds of even backfilling on top of `alloc`, in place.
// Requires rounds >= 0 (0 is a no-op). Never oversubscribes a link.
// Rescans the snapshot for per-link flow counts and usage — O(flows) per
// call on top of the round cost. Returns the number of rounds that
// actually moved bandwidth (a round finding no spare capacity stops the
// loop and is not counted) — the obs layer's backfill_rounds counter.
int even_backfill(const ScheduleInput& input, Allocation& alloc,
                  int rounds = 1);

// Variant for callers that already maintain the per-link vectors (the
// incremental NC-DRF engine): `live_counts` holds each link's active-flow
// total (link_flow_counts equivalent) and `residual` the capacity left
// after the base allocation (capacity − usage, unclamped; negative values
// are treated as no spare). Skips the first round's O(flows) rescan;
// rounds beyond the first recompute usage from `alloc` as usual. Both
// vectors must be sized to fabric.num_links(). `residual` is consumed as
// scratch (overwritten with per-link shares) so the per-event path
// allocates nothing. Returns the number of effective rounds, as above.
int even_backfill_cached(const ScheduleInput& input, Allocation& alloc,
                         int rounds, const std::vector<int>& live_counts,
                         std::vector<double>& residual);

}  // namespace ncdrf
