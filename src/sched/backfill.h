// The paper's work-conserving backfilling stage (Sec. IV-B, "Retaining Work
// Conservation"): unused bandwidth on each link is divided evenly among all
// active flows on that link, and each flow receives the minimum of its
// uplink and downlink shares:
//
//   w_k^{ij} = min( u^i / Σ_k n_k^i ,  u^j / Σ_k n_k^j )
//
// where u^i is the unused bandwidth on link i. One round is what
// Algorithm 1 describes; additional rounds converge toward full
// utilization and are exposed for the ablation bench.
#pragma once

#include "sched/scheduler.h"

namespace ncdrf {

// Runs `rounds` rounds of even backfilling on top of `alloc`, in place.
// Requires rounds >= 0 (0 is a no-op). Never oversubscribes a link.
void even_backfill(const ScheduleInput& input, Allocation& alloc,
                   int rounds = 1);

}  // namespace ncdrf
