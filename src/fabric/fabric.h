// Non-blocking datacenter fabric model (paper Sec. II-A, Fig. 2).
//
// The datacenter network is abstracted as one m×m non-blocking switch: the
// only contention points are the 2m machine port links. Link i in [0, m)
// is the *uplink* of machine i; link i in [m, 2m) is the *downlink* of
// machine (i - m). All bandwidth math in the library is expressed against
// these 2m links.
#pragma once

#include <vector>

#include "common/check.h"

namespace ncdrf {

// Dense identifiers. Machines are [0, m); links are [0, 2m).
using MachineId = int;
using LinkId = int;

class Fabric {
 public:
  // Fabric with `num_machines` machines, every up/downlink at
  // `link_capacity_bps`. Requires num_machines >= 1 and a positive capacity.
  Fabric(int num_machines, double link_capacity_bps);

  // Heterogeneous-capacity fabric: `capacities_bps` holds 2m per-link
  // capacities laid out uplinks-first. All must be positive.
  explicit Fabric(std::vector<double> capacities_bps);

  int num_machines() const { return num_machines_; }
  int num_links() const { return 2 * num_machines_; }

  LinkId uplink(MachineId machine) const {
    check_machine(machine);
    return machine;
  }
  LinkId downlink(MachineId machine) const {
    check_machine(machine);
    return machine + num_machines_;
  }

  bool is_uplink(LinkId link) const {
    check_link(link);
    return link < num_machines_;
  }

  // Machine that owns the given (up or down) link.
  MachineId machine_of(LinkId link) const {
    check_link(link);
    return link < num_machines_ ? link : link - num_machines_;
  }

  double capacity(LinkId link) const {
    check_link(link);
    return capacities_[static_cast<std::size_t>(link)];
  }

  // Sum of all 2m link capacities ("300 Gbps availability" in Fig. 5b).
  double total_capacity() const { return total_capacity_; }

  // True when every link has the same capacity (the paper's normalized
  // model; heterogeneous fabrics are an extension exercised in tests).
  bool uniform_capacity() const { return uniform_; }

 private:
  void check_machine(MachineId machine) const {
    NCDRF_CHECK(machine >= 0 && machine < num_machines_,
                "machine id out of range");
  }
  void check_link(LinkId link) const {
    NCDRF_CHECK(link >= 0 && link < 2 * num_machines_, "link id out of range");
  }

  int num_machines_;
  std::vector<double> capacities_;
  double total_capacity_ = 0.0;
  bool uniform_ = true;
};

}  // namespace ncdrf
