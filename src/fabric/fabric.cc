#include "fabric/fabric.h"

namespace ncdrf {

Fabric::Fabric(int num_machines, double link_capacity_bps)
    : num_machines_(num_machines) {
  NCDRF_CHECK(num_machines >= 1, "fabric needs at least one machine");
  NCDRF_CHECK(link_capacity_bps > 0.0, "link capacity must be positive");
  capacities_.assign(static_cast<std::size_t>(2 * num_machines),
                     link_capacity_bps);
  total_capacity_ = link_capacity_bps * 2.0 * num_machines;
  uniform_ = true;
}

Fabric::Fabric(std::vector<double> capacities_bps)
    : capacities_(std::move(capacities_bps)) {
  NCDRF_CHECK(!capacities_.empty() && capacities_.size() % 2 == 0,
              "need an even, positive number of link capacities (2m)");
  num_machines_ = static_cast<int>(capacities_.size() / 2);
  for (const double c : capacities_) {
    NCDRF_CHECK(c > 0.0, "link capacity must be positive");
    total_capacity_ += c;
    uniform_ = uniform_ && c == capacities_.front();
  }
}

}  // namespace ncdrf
