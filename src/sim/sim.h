// Event-driven fluid coflow simulator — the evaluation substrate
// (CoflowSim equivalent, DESIGN.md system #10).
//
// Model: between scheduling events, every flow transfers at a constant
// rate chosen by the Scheduler; link capacities at the fabric edge are the
// only constraints (non-blocking core). Events are:
//
//   * coflow arrival          (trace order)
//   * flow/coflow completion  (remaining bits reach zero)
//   * scheduler-internal      (e.g. Aalo priority-queue crossings)
//
// At each event the simulator advances state analytically over the elapsed
// interval, records time-weighted metrics for that interval, updates the
// active set, and asks the scheduler for a fresh allocation — exactly the
// NC-DRFOnline loop of Algorithm 1 generalized to all policies.
//
// Clairvoyance enforcement: ScheduleInput::clairvoyant is populated only
// when the scheduler declares clairvoyant() == true, so non-clairvoyant
// policies cannot read sizes even by accident.
#pragma once

#include <vector>

#include "fabric/fabric.h"
#include "sched/scheduler.h"
#include "trace/trace.h"

namespace ncdrf {

namespace scenario {
class WorkloadSource;
}  // namespace scenario

// Optional observability attachments (src/obs/); forward-declared so the
// sim API does not drag obs headers into every includer.
namespace obs {
class Tracer;
class MetricsRegistry;
class FairnessAuditor;
}  // namespace obs

struct SimOptions {
  // Flows with fewer remaining bits than this are considered complete
  // (guards float drift; 1 bit ≪ any real flow).
  double completion_epsilon_bits = 1.0;

  // Record per-interval utilization/disparity samples (Figs. 5a, 5b).
  // Costs O(active flows + coflows·links) per event; disable for CCT-only
  // runs.
  bool record_intervals = true;

  // Record per-coflow progress time series (Fig. 8). Meant for small
  // workloads; O(coflows) samples per event.
  bool record_progress_timeseries = false;

  // Re-validate every allocation against link capacities (tests/debug).
  bool validate_allocations = false;

  // Cross-check the engine's incrementally maintained ScheduleInput views
  // against a from-scratch rebuild before every allocate (tests/debug;
  // O(active flows) per event).
  bool verify_snapshot = false;

  // Cross-shard reconciliation knobs, forwarded into every snapshot's
  // ScheduleInput::reconcile. Only read by schedulers built with
  // SchedulerOptions::shards > 1.
  ShardReconcile reconcile;

  // Hard safety limits; exceeding either throws (misbehaving scheduler).
  double max_time_s = 1e9;
  long long max_events = 100'000'000;

  // --- Observability (all optional, null = off) --------------------------
  //
  // Virtual-clock event tracer: arrivals, flow/coflow completions and the
  // allocate span per event, plus whatever the scheduler itself emits
  // (NC-DRF's nested phase spans). Also offered to the scheduler via
  // Scheduler::set_observers at run().
  obs::Tracer* tracer = nullptr;
  // Counters (arrivals/finishes/allocations) and histograms (allocate
  // latency via the scheduler, per-interval link utilization).
  obs::MetricsRegistry* metrics = nullptr;
  // Live Theorem 1 fairness audit: the engine feeds it every submission,
  // per-interval progress + dominant-link share, and every completion.
  // Implies the per-interval progress scan even when record_intervals and
  // record_progress_timeseries are off. Callers finalize()/export after
  // the run.
  obs::FairnessAuditor* auditor = nullptr;
};

// Outcome of one coflow in a run.
struct CoflowRecord {
  CoflowId id = -1;
  double arrival = 0.0;
  double completion = 0.0;
  double cct = 0.0;
  // Minimum possible CCT: the bottleneck link's transfer time running
  // alone in the fabric (denominator of the paper's shuffle slowdown).
  double min_cct = 0.0;
  int width = 0;
  double max_flow_bits = 0.0;
  double total_bits = 0.0;
};

// Time-weighted sample covering [t0, t1).
struct IntervalRecord {
  double t0 = 0.0;
  double t1 = 0.0;
  int active_coflows = 0;
  // Σ link usage across all 2m links (what Fig. 5b plots against the
  // "300 Gbps availability"); equals twice the sum of flow rates.
  double link_usage_bps = 0.0;
  // Instantaneous progress extremes across active coflows (Eq. 1,
  // remaining-demand correlation). min may be 0 under priority policies.
  double min_progress = 0.0;
  double max_progress = 0.0;
};

// Per-coflow progress over one interval (Fig. 8 time series).
struct ProgressSample {
  double t0 = 0.0;
  double t1 = 0.0;
  CoflowId coflow = -1;
  double progress = 0.0;
};

struct RunResult {
  // Indexed by CoflowId (dense, same order as trace.coflows).
  std::vector<CoflowRecord> coflows;
  std::vector<IntervalRecord> intervals;
  std::vector<ProgressSample> progress;
  double makespan = 0.0;
  double total_bits_delivered = 0.0;
  long long num_events = 0;
  long long num_allocations = 0;
};

// Replays `source` on `fabric` under `scheduler` — the scenario-spine
// entry point all workload kinds go through. Submissions become coflows
// (id, arrival, flows, weight, tenant = client) and every one completes
// (the simulator throws on scheduler-induced starvation where no event
// can ever fire).
RunResult simulate(const Fabric& fabric, scenario::WorkloadSource& source,
                   Scheduler& scheduler, const SimOptions& options = {});

// Trace convenience wrapper: adapts the trace through the spine.
RunResult simulate(const Fabric& fabric, const Trace& trace,
                   Scheduler& scheduler, const SimOptions& options = {});

}  // namespace ncdrf
