#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "coflow/coflow.h"
#include "common/check.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace ncdrf {
namespace {

constexpr double kTimeTolerance = 1e-9;
constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

struct DynamicSimulator::Impl {
  // One active coflow's state. Owns its Coflow copy; `unfinished` /
  // `finished` point into it, so entries are heap-allocated and never
  // moved after creation.
  struct ActiveEntry {
    explicit ActiveEntry(Coflow c) : coflow(std::move(c)) {}
    Coflow coflow;
    std::vector<const Flow*> unfinished;
    std::vector<const Flow*> finished;
    std::vector<double> correlation;  // c_k from original demand (Eq. 1)
    LinkId dom_link = -1;             // arg-max of the original demand
    // The entry's ActiveCoflow view in `input` (same index as in `active`)
    // no longer matches unfinished/finished and must be re-filled before
    // the next allocate(). Views of clean entries are reused as-is.
    bool dirty = false;
    // Some flow of this entry has remaining ≤ epsilon — the retire phase
    // only scans flagged entries instead of rescanning every flow.
    bool finish_pending = false;
  };

  struct PendingLater {
    bool operator()(const std::unique_ptr<ActiveEntry>& a,
                    const std::unique_ptr<ActiveEntry>& b) const {
      if (a->coflow.arrival_time() != b->coflow.arrival_time()) {
        return a->coflow.arrival_time() > b->coflow.arrival_time();
      }
      return a->coflow.id() > b->coflow.id();
    }
  };

  // One candidate flow-completion event: `time` is the absolute finish
  // time the flow had when its rate was last set. Entries are never
  // removed in place — they go stale when the flow's rate changes or the
  // flow finishes (lazy invalidation: an entry is live iff it equals
  // finish_time_of[flow]).
  struct FinishEvent {
    double time;
    FlowId flow;
  };
  struct FinishLater {
    bool operator()(const FinishEvent& a, const FinishEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.flow > b.flow;
    }
  };

  Impl(const Fabric& fabric_in, Scheduler& scheduler_in, SimOptions opts)
      : fabric(fabric_in), scheduler(scheduler_in), options(opts) {
    NCDRF_CHECK(options.completion_epsilon_bits > 0.0,
                "completion epsilon must be positive");
    input.fabric = &fabric;
    input.reconcile = options.reconcile;
    if (options.metrics != nullptr) {
      // Instruments are looked up once; per-event cost is an increment.
      m_arrivals = &options.metrics->counter("sim.coflow_arrivals");
      m_flow_finishes = &options.metrics->counter("sim.flow_finishes");
      m_coflow_finishes = &options.metrics->counter("sim.coflow_finishes");
      m_allocations = &options.metrics->counter("sim.allocations");
      // Fabric-wide utilization fraction per inter-event interval.
      m_utilization = &options.metrics->histogram("sim.link_utilization",
                                                  1e-6, 1.0, 1.1);
    }
  }

  const Fabric& fabric;
  Scheduler& scheduler;
  SimOptions options;
  CompletionCallback on_complete;
  // Deliver arrival/flow-finish/departure deltas to the scheduler (set at
  // run() from Scheduler::wants_events) so event-driven policies can keep
  // incremental state instead of rescanning every snapshot.
  bool deliver_events = false;

  double now = 0.0;
  RunResult result;
  std::vector<double> remaining;  // indexed by FlowId, grown on submit
  std::vector<std::unique_ptr<ActiveEntry>> active;
  // The scheduler snapshot, maintained incrementally: input.coflows[a] is
  // the view of active[a] and follows its swap-pop moves. Views are
  // re-filled only for dirty entries; attained_bits is bumped in place
  // during the advance step.
  ScheduleInput input;
  std::priority_queue<std::unique_ptr<ActiveEntry>,
                      std::vector<std::unique_ptr<ActiveEntry>>, PendingLater>
      pending;
  std::unordered_set<CoflowId> seen_coflows;
  // result.coflows slot by coflow id — O(1) departure bookkeeping. Valid
  // during run() only (take_result re-sorts the records).
  std::unordered_map<CoflowId, std::size_t> record_index;

  // Next-completion min-heap with lazy invalidation. last_rate / finish_at
  // are indexed by FlowId alongside `remaining`; a heap entry is live iff
  // its time equals finish_at[flow]. While a flow's rate is unchanged its
  // absolute finish time is invariant, so steady flows cost nothing per
  // event — only flows whose rate changed pay an O(log n) push.
  std::priority_queue<FinishEvent, std::vector<FinishEvent>, FinishLater>
      completions;
  std::vector<double> last_rate;  // rate the heap entry was computed with
  std::vector<double> finish_at;  // canonical finish time; inf = no event
  std::size_t unfinished_flows = 0;

  // Cached metric instruments (null when options.metrics is null).
  obs::Counter* m_arrivals = nullptr;
  obs::Counter* m_flow_finishes = nullptr;
  obs::Counter* m_coflow_finishes = nullptr;
  obs::Counter* m_allocations = nullptr;
  obs::Histogram* m_utilization = nullptr;

  // Scratch buffers for progress_of and clamp_and_update_completions
  // (hoisted out of the per-call path).
  std::vector<double> scratch_link_alloc;
  std::vector<char> scratch_live;
  std::vector<double> scratch_clamp;
  std::vector<std::pair<FlowId, double>> scratch_changed;

  double& remaining_of(const Flow& f) {
    return remaining[static_cast<std::size_t>(f.id)];
  }

  void submit(Coflow coflow) {
    NCDRF_CHECK(coflow.arrival_time() >= now - kTimeTolerance,
                "cannot submit a coflow arriving in the past");
    NCDRF_CHECK(seen_coflows.insert(coflow.id()).second,
                "duplicate coflow id submitted");
    if (options.auditor != nullptr) options.auditor->on_submit(coflow);
    // Static record fields and the minimum-CCT denominator.
    CoflowRecord rec;
    rec.id = coflow.id();
    rec.arrival = coflow.arrival_time();
    rec.width = coflow.width();
    rec.max_flow_bits = coflow.max_flow_bits();
    rec.total_bits = coflow.total_bits();
    const DemandVectors d = coflow.demand(fabric);
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      rec.min_cct = std::max(rec.min_cct,
                             d.demand[idx] / fabric.capacity(i));
    }
    record_index.emplace(rec.id, result.coflows.size());
    result.coflows.push_back(rec);

    auto entry = std::make_unique<ActiveEntry>(std::move(coflow));
    entry->correlation = d.correlation();
    entry->dom_link = d.bottleneck_link;
    FlowId max_flow_id = -1;
    for (const Flow& f : entry->coflow.flows()) {
      NCDRF_CHECK(f.id >= 0, "flow ids must be non-negative");
      max_flow_id = std::max(max_flow_id, f.id);
    }
    if (static_cast<std::size_t>(max_flow_id) >= remaining.size()) {
      const auto size = static_cast<std::size_t>(max_flow_id) + 1;
      remaining.resize(size, 0.0);
      last_rate.resize(size, 0.0);
      finish_at.resize(size, kInfinity);
    }
    pending.push(std::move(entry));
  }

  void admit_due() {
    while (!pending.empty() &&
           pending.top()->coflow.arrival_time() <= now + kTimeTolerance) {
      auto entry = std::move(
          const_cast<std::unique_ptr<ActiveEntry>&>(pending.top()));
      pending.pop();
      entry->unfinished.reserve(entry->coflow.flows().size());
      for (const Flow& f : entry->coflow.flows()) {
        remaining_of(f) = f.size_bits;
        entry->unfinished.push_back(&f);
        ++unfinished_flows;
        if (f.size_bits <= options.completion_epsilon_bits) {
          entry->finish_pending = true;  // zero-size flow: retire at once
        }
      }
      ActiveCoflow view;
      view.id = entry->coflow.id();
      view.arrival_time = entry->coflow.arrival_time();
      view.tenant = entry->coflow.tenant();
      view.weight = entry->coflow.weight();
      view.flows.reserve(entry->unfinished.size());
      for (const Flow* f : entry->unfinished) {
        view.flows.push_back(ActiveFlow{f->id, f->coflow, f->src, f->dst});
      }
      input.coflows.push_back(std::move(view));
      if (deliver_events) {
        scheduler.on_coflow_arrival(input.coflows.back());
      }
      NCDRF_TRACE_INSTANT(options.tracer, obs::EventKind::kCoflowArrival,
                          now, entry->coflow.id(), entry->coflow.width());
      if (m_arrivals != nullptr) m_arrivals->inc();
      active.push_back(std::move(entry));
    }
  }

  // Re-fills the views of dirty entries from their unfinished/finished
  // lists; clean views are reused untouched.
  void refresh_views() {
    for (std::size_t a = 0; a < active.size(); ++a) {
      ActiveEntry& entry = *active[a];
      if (!entry.dirty) continue;
      ActiveCoflow& view = input.coflows[a];
      view.flows.clear();
      view.flows.reserve(entry.unfinished.size());
      for (const Flow* f : entry.unfinished) {
        view.flows.push_back(ActiveFlow{f->id, f->coflow, f->src, f->dst});
      }
      view.finished_flows.clear();
      view.finished_flows.reserve(entry.finished.size());
      for (const Flow* f : entry.finished) {
        view.finished_flows.push_back(
            ActiveFlow{f->id, f->coflow, f->src, f->dst});
      }
      entry.dirty = false;
    }
  }

  // Debug oracle for the incremental snapshot: every view must equal a
  // from-scratch rebuild of the entry it mirrors (structure exactly;
  // attained_bits is maintained in place and checked for finiteness).
  void check_snapshot_consistent() const {
    NCDRF_CHECK(input.coflows.size() == active.size(),
                "snapshot/active size mismatch");
    for (std::size_t a = 0; a < active.size(); ++a) {
      const ActiveEntry& entry = *active[a];
      const ActiveCoflow& view = input.coflows[a];
      NCDRF_CHECK(!entry.dirty, "dirty view reached the scheduler");
      NCDRF_CHECK(view.id == entry.coflow.id(), "snapshot id mismatch");
      NCDRF_CHECK(view.arrival_time == entry.coflow.arrival_time(),
                  "snapshot arrival mismatch");
      NCDRF_CHECK(view.weight == entry.coflow.weight(),
                  "snapshot weight mismatch");
      NCDRF_CHECK(view.tenant == entry.coflow.tenant(),
                  "snapshot tenant mismatch");
      NCDRF_CHECK(std::isfinite(view.attained_bits) &&
                      view.attained_bits >= 0.0,
                  "snapshot attained_bits invalid");
      NCDRF_CHECK(view.flows.size() == entry.unfinished.size(),
                  "snapshot live-flow count mismatch");
      for (std::size_t i = 0; i < entry.unfinished.size(); ++i) {
        const Flow& f = *entry.unfinished[i];
        const ActiveFlow& v = view.flows[i];
        NCDRF_CHECK(v.id == f.id && v.coflow == f.coflow && v.src == f.src &&
                        v.dst == f.dst,
                    "snapshot live flow mismatch");
      }
      NCDRF_CHECK(view.finished_flows.size() == entry.finished.size(),
                  "snapshot finished-flow count mismatch");
      for (std::size_t i = 0; i < entry.finished.size(); ++i) {
        const Flow& f = *entry.finished[i];
        const ActiveFlow& v = view.finished_flows[i];
        NCDRF_CHECK(v.id == f.id && v.coflow == f.coflow && v.src == f.src &&
                        v.dst == f.dst,
                    "snapshot finished flow mismatch");
      }
    }
  }

  // Progress of one active coflow (Eq. 1) against its original
  // correlation, over links it still has data on.
  double progress_of(const ActiveEntry& entry, const Allocation& alloc) {
    scratch_link_alloc.assign(static_cast<std::size_t>(fabric.num_links()),
                              0.0);
    scratch_live.assign(static_cast<std::size_t>(fabric.num_links()), 0);
    for (const Flow* f : entry.unfinished) {
      const auto up = static_cast<std::size_t>(fabric.uplink(f->src));
      const auto down = static_cast<std::size_t>(fabric.downlink(f->dst));
      const double r = alloc.rate(f->id);
      scratch_link_alloc[up] += r;
      scratch_link_alloc[down] += r;
      scratch_live[up] = 1;
      scratch_live[down] = 1;
    }
    double progress = kInfinity;
    for (std::size_t i = 0; i < scratch_link_alloc.size(); ++i) {
      if (scratch_live[i] && entry.correlation[i] > 0.0) {
        progress =
            std::min(progress, scratch_link_alloc[i] / entry.correlation[i]);
      }
    }
    return std::isfinite(progress) ? progress : 0.0;
  }

  // Folds one flow's (possibly new) rate into the completion heap: flows
  // whose rate is unchanged keep their live entry (absolute finish time is
  // invariant under a constant rate); changed flows get a fresh canonical
  // entry.
  void update_flow_completion(FlowId flow, double r) {
    const auto idx = static_cast<std::size_t>(flow);
    if (r == last_rate[idx] && (r <= 0.0 || finish_at[idx] < kInfinity)) {
      return;
    }
    last_rate[idx] = r;
    if (r > 0.0) {
      const double t = now + remaining[idx] / r;
      finish_at[idx] = t;
      completions.push(FinishEvent{t, flow});
    } else {
      finish_at[idx] = kInfinity;
    }
  }

  // One pass over the active flows doing the work of clamp_to_capacity's
  // usage accumulation AND the completion-heap refresh — the two dominant
  // per-event O(flows) scans share their loads. Because clamping may still
  // rescale the rates, the shared pass only *collects* the flows whose
  // rate changed; heap entries are pushed after the feasibility check, from
  // the (usually short) changed list on the feasible path or from the
  // rescale pass otherwise. Pushing pre-clamp rates up front would flood
  // the heap with stale entries whenever a link overshoots by ulps — which
  // the DRF stage does routinely, since it saturates the bottleneck
  // exactly.
  void clamp_and_update_completions(Allocation& alloc) {
    const auto links = static_cast<std::size_t>(fabric.num_links());
    scratch_clamp.assign(links, 0.0);
    scratch_changed.clear();
    for (const auto& entry : active) {
      for (const Flow* f : entry->unfinished) {
        const double r = alloc.rate(f->id);
        scratch_clamp[static_cast<std::size_t>(fabric.uplink(f->src))] += r;
        scratch_clamp[static_cast<std::size_t>(fabric.downlink(f->dst))] += r;
        const auto idx = static_cast<std::size_t>(f->id);
        if (!(r == last_rate[idx] &&
              (r <= 0.0 || finish_at[idx] < kInfinity))) {
          scratch_changed.emplace_back(f->id, r);
        }
      }
    }
    bool any_over = false;
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (scratch_clamp[idx] > fabric.capacity(i)) {
        scratch_clamp[idx] = fabric.capacity(i) / scratch_clamp[idx];
        any_over = true;
      } else {
        scratch_clamp[idx] = 1.0;
      }
    }
    if (!any_over) {
      for (const auto& [flow, r] : scratch_changed) {
        update_flow_completion(flow, r);
      }
    } else {
      // Rescale pass: every flow needs a heap refresh against its final
      // rate (including flows that dropped to zero — their canonical
      // finish time must become infinity).
      for (const auto& entry : active) {
        for (const Flow* f : entry->unfinished) {
          double r = alloc.rate(f->id);
          if (r > 0.0) {
            const double s = std::min(
                scratch_clamp[static_cast<std::size_t>(fabric.uplink(f->src))],
                scratch_clamp[static_cast<std::size_t>(
                    fabric.downlink(f->dst))]);
            if (s < 1.0) {
              r *= s;
              alloc.set_rate(f->id, r);
            }
          }
          update_flow_completion(f->id, r);
        }
      }
    }
    // Stale entries accumulate under heavy rate churn; rebuild from the
    // canonical finish times once they dominate, bounding heap memory at
    // O(unfinished flows) amortized.
    if (completions.size() > 64 &&
        completions.size() > 4 * unfinished_flows) {
      std::vector<FinishEvent> live;
      live.reserve(unfinished_flows);
      for (const auto& entry : active) {
        for (const Flow* f : entry->unfinished) {
          const double t = finish_at[static_cast<std::size_t>(f->id)];
          if (t < kInfinity) live.push_back(FinishEvent{t, f->id});
        }
      }
      completions = std::priority_queue<FinishEvent, std::vector<FinishEvent>,
                                        FinishLater>(FinishLater{},
                                                     std::move(live));
    }
  }

  // Earliest live flow-completion time, discarding stale heap entries.
  double next_completion_time() {
    while (!completions.empty()) {
      const FinishEvent top = completions.top();
      if (finish_at[static_cast<std::size_t>(top.flow)] == top.time) {
        return top.time;
      }
      completions.pop();
    }
    return kInfinity;
  }

  void run() {
    const ClairvoyantInfo clairvoyant_info(&remaining);
    const bool clairvoyant = scheduler.clairvoyant();
    deliver_events = scheduler.wants_events();
    scheduler.set_observers(options.tracer, options.metrics);
    if (deliver_events) scheduler.on_reset(fabric);
    input.clairvoyant = clairvoyant ? &clairvoyant_info : nullptr;

    admit_due();
    while (!active.empty() || !pending.empty()) {
      NCDRF_CHECK(result.num_events < options.max_events,
                  "event limit exceeded — scheduler appears to livelock");
      if (active.empty()) {
        now = pending.top()->coflow.arrival_time();
        admit_due();
        continue;
      }

      // Bring the persistent snapshot up to date for the scheduler.
      refresh_views();
      input.now = now;
      input.total_live_flows = static_cast<int>(unfinished_flows);
      if (options.verify_snapshot) check_snapshot_consistent();

      Allocation alloc;
      {
        NCDRF_TRACE_SPAN(options.tracer, obs::EventKind::kAllocate, now,
                         static_cast<std::int64_t>(active.size()));
        alloc = scheduler.allocate(input);
      }
      clamp_and_update_completions(alloc);
      if (options.validate_allocations) check_capacity(input, alloc);
      ++result.num_allocations;
      if (m_allocations != nullptr) m_allocations->inc();

      // Next event time.
      double dt = next_completion_time() - now;
      if (!pending.empty()) {
        dt = std::min(dt, pending.top()->coflow.arrival_time() - now);
      }
      if (const auto internal =
              scheduler.next_internal_event(input, alloc)) {
        dt = std::min(dt, *internal);
      }
      NCDRF_CHECK(std::isfinite(dt),
                  "starvation: no completion, arrival or internal event "
                  "ahead under scheduler " + scheduler.name());
      dt = std::max(dt, 0.0);
      NCDRF_CHECK(now + dt <= options.max_time_s,
                  "simulated time limit exceeded");

      // Time-weighted metrics over [now, now + dt).
      if (dt > 0.0 &&
          (options.record_intervals || options.record_progress_timeseries ||
           options.auditor != nullptr)) {
        double min_p = kInfinity;
        double max_p = 0.0;
        for (const auto& entry : active) {
          const double p = progress_of(*entry, alloc);
          min_p = std::min(min_p, p);
          max_p = std::max(max_p, p);
          if (options.record_progress_timeseries) {
            result.progress.push_back(ProgressSample{
                now, now + dt, entry->coflow.id(), p});
          }
          if (options.auditor != nullptr) {
            // progress_of left this coflow's per-link aggregate in
            // scratch_link_alloc; its dominant-link share falls out free.
            double dominant_share = 0.0;
            if (entry->dom_link >= 0) {
              const auto dom = static_cast<std::size_t>(entry->dom_link);
              dominant_share =
                  scratch_link_alloc[dom] / fabric.capacity(entry->dom_link);
            }
            options.auditor->record(now, now + dt, entry->coflow.id(), p,
                                    dominant_share);
          }
        }
        if (options.record_intervals) {
          IntervalRecord rec;
          rec.t0 = now;
          rec.t1 = now + dt;
          rec.active_coflows = static_cast<int>(active.size());
          rec.link_usage_bps = 2.0 * alloc.total_rate();
          rec.min_progress = std::isfinite(min_p) ? min_p : 0.0;
          rec.max_progress = max_p;
          result.intervals.push_back(rec);
        }
        if (m_utilization != nullptr) {
          m_utilization->observe(2.0 * alloc.total_rate() /
                                 fabric.total_capacity());
        }
      }

      // Advance the fluid state, flagging entries with flows at (or below)
      // the completion epsilon so the retire phase can skip the rest.
      for (std::size_t a = 0; a < active.size(); ++a) {
        ActiveEntry& entry = *active[a];
        double delivered_total = 0.0;
        for (const Flow* f : entry.unfinished) {
          double& rem = remaining_of(*f);
          const double r = alloc.rate(f->id);
          if (r > 0.0) {
            const double delivered = std::min(r * dt, rem);
            rem -= delivered;
            delivered_total += delivered;
          }
          if (rem <= options.completion_epsilon_bits) {
            entry.finish_pending = true;
          }
        }
        input.coflows[a].attained_bits += delivered_total;
        result.total_bits_delivered += delivered_total;
      }
      now += dt;
      ++result.num_events;

      // Retire finished flows and coflows; completions may submit more
      // coflows through the callback.
      for (std::size_t a = 0; a < active.size();) {
        ActiveEntry& entry = *active[a];
        if (!entry.finish_pending) {
          ++a;
          continue;
        }
        entry.finish_pending = false;
        // One pass: fire finish hooks and compact `unfinished` in place.
        std::size_t kept = 0;
        for (std::size_t i = 0; i < entry.unfinished.size(); ++i) {
          const Flow* f = entry.unfinished[i];
          if (remaining_of(*f) <= options.completion_epsilon_bits) {
            entry.finished.push_back(f);
            entry.dirty = true;
            const auto idx = static_cast<std::size_t>(f->id);
            finish_at[idx] = kInfinity;
            last_rate[idx] = 0.0;
            --unfinished_flows;
            if (deliver_events) {
              scheduler.on_flow_finish(
                  ActiveFlow{f->id, f->coflow, f->src, f->dst});
            }
            NCDRF_TRACE_INSTANT(options.tracer, obs::EventKind::kFlowFinish,
                                now, f->id, f->coflow);
            if (m_flow_finishes != nullptr) m_flow_finishes->inc();
          } else {
            entry.unfinished[kept++] = f;
          }
        }
        entry.unfinished.resize(kept);
        if (entry.unfinished.empty()) {
          const CoflowId id = entry.coflow.id();
          if (deliver_events) scheduler.on_coflow_departure(id);
          const auto rec_it = record_index.find(id);
          NCDRF_CHECK(rec_it != record_index.end(),
                      "missing record for coflow");
          CoflowRecord& rec = result.coflows[rec_it->second];
          rec.completion = now;
          rec.cct = now - rec.arrival;
          const CoflowRecord completed = rec;
          NCDRF_TRACE_INSTANT(options.tracer,
                              obs::EventKind::kCoflowFinish, now, id, 0,
                              rec.cct);
          if (m_coflow_finishes != nullptr) m_coflow_finishes->inc();
          if (options.auditor != nullptr) {
            options.auditor->on_complete(id, rec.arrival, now);
          }
          if (a + 1 != active.size()) {
            active[a] = std::move(active.back());
            input.coflows[a] = std::move(input.coflows.back());
          }
          active.pop_back();
          input.coflows.pop_back();
          if (on_complete) on_complete(completed);
        } else {
          ++a;
        }
      }

      admit_due();
    }
    result.makespan = std::max(result.makespan, now);
    input.clairvoyant = nullptr;  // points at a local; run() may re-enter
  }
};

DynamicSimulator::DynamicSimulator(const Fabric& fabric, Scheduler& scheduler,
                                   SimOptions options)
    : impl_(std::make_unique<Impl>(fabric, scheduler, options)) {}

DynamicSimulator::~DynamicSimulator() = default;

void DynamicSimulator::submit(Coflow coflow) {
  impl_->submit(std::move(coflow));
}

void DynamicSimulator::set_completion_callback(CompletionCallback callback) {
  impl_->on_complete = std::move(callback);
}

void DynamicSimulator::run() { impl_->run(); }

double DynamicSimulator::now() const { return impl_->now; }

int DynamicSimulator::active_coflows() const {
  return static_cast<int>(impl_->active.size());
}

RunResult DynamicSimulator::take_result() {
  NCDRF_CHECK(impl_->active.empty() && impl_->pending.empty(),
              "take_result on an undrained simulator");
  std::sort(impl_->result.coflows.begin(), impl_->result.coflows.end(),
            [](const CoflowRecord& a, const CoflowRecord& b) {
              return a.id < b.id;
            });
  return std::move(impl_->result);
}

}  // namespace ncdrf
