#include "sim/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_set>

#include "coflow/coflow.h"
#include "common/check.h"

namespace ncdrf {
namespace {

constexpr double kTimeTolerance = 1e-9;

}  // namespace

struct DynamicSimulator::Impl {
  // One active coflow's state. Owns its Coflow copy; `unfinished` /
  // `finished` point into it, so entries are heap-allocated and never
  // moved after creation.
  struct ActiveEntry {
    explicit ActiveEntry(Coflow c) : coflow(std::move(c)) {}
    Coflow coflow;
    std::vector<const Flow*> unfinished;
    std::vector<const Flow*> finished;
    std::vector<double> correlation;  // c_k from original demand (Eq. 1)
    double attained_bits = 0.0;
  };

  struct PendingLater {
    bool operator()(const std::unique_ptr<ActiveEntry>& a,
                    const std::unique_ptr<ActiveEntry>& b) const {
      if (a->coflow.arrival_time() != b->coflow.arrival_time()) {
        return a->coflow.arrival_time() > b->coflow.arrival_time();
      }
      return a->coflow.id() > b->coflow.id();
    }
  };

  Impl(const Fabric& fabric_in, Scheduler& scheduler_in, SimOptions opts)
      : fabric(fabric_in), scheduler(scheduler_in), options(opts) {
    NCDRF_CHECK(options.completion_epsilon_bits > 0.0,
                "completion epsilon must be positive");
  }

  const Fabric& fabric;
  Scheduler& scheduler;
  SimOptions options;
  CompletionCallback on_complete;
  // Deliver arrival/flow-finish/departure deltas to the scheduler (set at
  // run() from Scheduler::wants_events) so event-driven policies can keep
  // incremental state instead of rescanning every snapshot.
  bool deliver_events = false;

  double now = 0.0;
  RunResult result;
  std::vector<double> remaining;  // indexed by FlowId, grown on submit
  std::vector<std::unique_ptr<ActiveEntry>> active;
  std::priority_queue<std::unique_ptr<ActiveEntry>,
                      std::vector<std::unique_ptr<ActiveEntry>>, PendingLater>
      pending;
  std::unordered_set<CoflowId> seen_coflows;

  double& remaining_of(const Flow& f) {
    return remaining[static_cast<std::size_t>(f.id)];
  }

  void submit(Coflow coflow) {
    NCDRF_CHECK(coflow.arrival_time() >= now - kTimeTolerance,
                "cannot submit a coflow arriving in the past");
    NCDRF_CHECK(seen_coflows.insert(coflow.id()).second,
                "duplicate coflow id submitted");
    // Static record fields and the minimum-CCT denominator.
    CoflowRecord rec;
    rec.id = coflow.id();
    rec.arrival = coflow.arrival_time();
    rec.width = coflow.width();
    rec.max_flow_bits = coflow.max_flow_bits();
    rec.total_bits = coflow.total_bits();
    const DemandVectors d = coflow.demand(fabric);
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      rec.min_cct = std::max(rec.min_cct,
                             d.demand[idx] / fabric.capacity(i));
    }
    result.coflows.push_back(rec);

    auto entry = std::make_unique<ActiveEntry>(std::move(coflow));
    entry->correlation = d.correlation();
    for (const Flow& f : entry->coflow.flows()) {
      NCDRF_CHECK(f.id >= 0, "flow ids must be non-negative");
      if (static_cast<std::size_t>(f.id) >= remaining.size()) {
        remaining.resize(static_cast<std::size_t>(f.id) + 1, 0.0);
      }
    }
    pending.push(std::move(entry));
  }

  void admit_due() {
    while (!pending.empty() &&
           pending.top()->coflow.arrival_time() <= now + kTimeTolerance) {
      auto entry = std::move(
          const_cast<std::unique_ptr<ActiveEntry>&>(pending.top()));
      pending.pop();
      entry->unfinished.reserve(entry->coflow.flows().size());
      for (const Flow& f : entry->coflow.flows()) {
        remaining_of(f) = f.size_bits;
        entry->unfinished.push_back(&f);
      }
      if (deliver_events) {
        ActiveCoflow view;
        view.id = entry->coflow.id();
        view.arrival_time = entry->coflow.arrival_time();
        view.weight = entry->coflow.weight();
        view.flows.reserve(entry->unfinished.size());
        for (const Flow* f : entry->unfinished) {
          view.flows.push_back(ActiveFlow{f->id, f->coflow, f->src, f->dst});
        }
        scheduler.on_coflow_arrival(view);
      }
      active.push_back(std::move(entry));
    }
  }

  // Progress of one active coflow (Eq. 1) against its original
  // correlation, over links it still has data on.
  double progress_of(const ActiveEntry& entry, const Allocation& alloc) {
    std::vector<double> link_alloc(
        static_cast<std::size_t>(fabric.num_links()), 0.0);
    std::vector<char> live(static_cast<std::size_t>(fabric.num_links()), 0);
    for (const Flow* f : entry.unfinished) {
      const auto up = static_cast<std::size_t>(fabric.uplink(f->src));
      const auto down = static_cast<std::size_t>(fabric.downlink(f->dst));
      const double r = alloc.rate(f->id);
      link_alloc[up] += r;
      link_alloc[down] += r;
      live[up] = 1;
      live[down] = 1;
    }
    double progress = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < link_alloc.size(); ++i) {
      if (live[i] && entry.correlation[i] > 0.0) {
        progress = std::min(progress, link_alloc[i] / entry.correlation[i]);
      }
    }
    return std::isfinite(progress) ? progress : 0.0;
  }

  void run() {
    const ClairvoyantInfo clairvoyant_info(&remaining);
    const bool clairvoyant = scheduler.clairvoyant();
    deliver_events = scheduler.wants_events();
    if (deliver_events) scheduler.on_reset(fabric);

    admit_due();
    while (!active.empty() || !pending.empty()) {
      NCDRF_CHECK(result.num_events < options.max_events,
                  "event limit exceeded — scheduler appears to livelock");
      if (active.empty()) {
        now = pending.top()->coflow.arrival_time();
        admit_due();
        continue;
      }

      // Snapshot for the scheduler.
      ScheduleInput input;
      input.fabric = &fabric;
      input.now = now;
      input.clairvoyant = clairvoyant ? &clairvoyant_info : nullptr;
      input.coflows.reserve(active.size());
      for (const auto& entry : active) {
        ActiveCoflow view;
        view.id = entry->coflow.id();
        view.arrival_time = entry->coflow.arrival_time();
        view.weight = entry->coflow.weight();
        view.attained_bits = entry->attained_bits;
        view.flows.reserve(entry->unfinished.size());
        for (const Flow* f : entry->unfinished) {
          view.flows.push_back(ActiveFlow{f->id, f->coflow, f->src, f->dst});
        }
        view.finished_flows.reserve(entry->finished.size());
        for (const Flow* f : entry->finished) {
          view.finished_flows.push_back(
              ActiveFlow{f->id, f->coflow, f->src, f->dst});
        }
        input.coflows.push_back(std::move(view));
      }

      Allocation alloc = scheduler.allocate(input);
      clamp_to_capacity(input, alloc);
      if (options.validate_allocations) check_capacity(input, alloc);
      ++result.num_allocations;

      // Next event time.
      double dt = std::numeric_limits<double>::infinity();
      for (const auto& entry : active) {
        for (const Flow* f : entry->unfinished) {
          const double r = alloc.rate(f->id);
          if (r > 0.0) dt = std::min(dt, remaining_of(*f) / r);
        }
      }
      if (!pending.empty()) {
        dt = std::min(dt, pending.top()->coflow.arrival_time() - now);
      }
      if (const auto internal =
              scheduler.next_internal_event(input, alloc)) {
        dt = std::min(dt, *internal);
      }
      NCDRF_CHECK(std::isfinite(dt),
                  "starvation: no completion, arrival or internal event "
                  "ahead under scheduler " + scheduler.name());
      dt = std::max(dt, 0.0);
      NCDRF_CHECK(now + dt <= options.max_time_s,
                  "simulated time limit exceeded");

      // Time-weighted metrics over [now, now + dt).
      if (dt > 0.0 &&
          (options.record_intervals || options.record_progress_timeseries)) {
        double min_p = std::numeric_limits<double>::infinity();
        double max_p = 0.0;
        for (const auto& entry : active) {
          const double p = progress_of(*entry, alloc);
          min_p = std::min(min_p, p);
          max_p = std::max(max_p, p);
          if (options.record_progress_timeseries) {
            result.progress.push_back(ProgressSample{
                now, now + dt, entry->coflow.id(), p});
          }
        }
        if (options.record_intervals) {
          IntervalRecord rec;
          rec.t0 = now;
          rec.t1 = now + dt;
          rec.active_coflows = static_cast<int>(active.size());
          rec.link_usage_bps = 2.0 * alloc.total_rate();
          rec.min_progress = std::isfinite(min_p) ? min_p : 0.0;
          rec.max_progress = max_p;
          result.intervals.push_back(rec);
        }
      }

      // Advance the fluid state.
      for (const auto& entry : active) {
        for (const Flow* f : entry->unfinished) {
          const double r = alloc.rate(f->id);
          if (r <= 0.0) continue;
          const double delivered = std::min(r * dt, remaining_of(*f));
          remaining_of(*f) -= delivered;
          entry->attained_bits += delivered;
          result.total_bits_delivered += delivered;
        }
      }
      now += dt;
      ++result.num_events;

      // Retire finished flows and coflows; completions may submit more
      // coflows through the callback.
      for (std::size_t a = 0; a < active.size();) {
        ActiveEntry& entry = *active[a];
        for (const Flow* f : entry.unfinished) {
          if (remaining_of(*f) <= options.completion_epsilon_bits) {
            entry.finished.push_back(f);
            if (deliver_events) {
              scheduler.on_flow_finish(
                  ActiveFlow{f->id, f->coflow, f->src, f->dst});
            }
          }
        }
        std::erase_if(entry.unfinished, [&](const Flow* f) {
          return remaining_of(*f) <= options.completion_epsilon_bits;
        });
        if (entry.unfinished.empty()) {
          const CoflowId id = entry.coflow.id();
          if (deliver_events) scheduler.on_coflow_departure(id);
          CoflowRecord* rec = nullptr;
          for (CoflowRecord& r : result.coflows) {
            if (r.id == id) rec = &r;
          }
          NCDRF_CHECK(rec != nullptr, "missing record for coflow");
          rec->completion = now;
          rec->cct = now - rec->arrival;
          const CoflowRecord completed = *rec;
          active[a] = std::move(active.back());
          active.pop_back();
          if (on_complete) on_complete(completed);
        } else {
          ++a;
        }
      }

      admit_due();
    }
    result.makespan = std::max(result.makespan, now);
  }
};

DynamicSimulator::DynamicSimulator(const Fabric& fabric, Scheduler& scheduler,
                                   SimOptions options)
    : impl_(std::make_unique<Impl>(fabric, scheduler, options)) {}

DynamicSimulator::~DynamicSimulator() = default;

void DynamicSimulator::submit(Coflow coflow) {
  impl_->submit(std::move(coflow));
}

void DynamicSimulator::set_completion_callback(CompletionCallback callback) {
  impl_->on_complete = std::move(callback);
}

void DynamicSimulator::run() { impl_->run(); }

double DynamicSimulator::now() const { return impl_->now; }

int DynamicSimulator::active_coflows() const {
  return static_cast<int>(impl_->active.size());
}

RunResult DynamicSimulator::take_result() {
  NCDRF_CHECK(impl_->active.empty() && impl_->pending.empty(),
              "take_result on an undrained simulator");
  std::sort(impl_->result.coflows.begin(), impl_->result.coflows.end(),
            [](const CoflowRecord& a, const CoflowRecord& b) {
              return a.id < b.id;
            });
  return std::move(impl_->result);
}

}  // namespace ncdrf
