#include "sim/sim.h"

#include "common/check.h"
#include "sim/engine.h"

namespace ncdrf {

RunResult simulate(const Fabric& fabric, const Trace& trace,
                   Scheduler& scheduler, const SimOptions& options) {
  NCDRF_CHECK(trace.num_machines == fabric.num_machines(),
              "trace and fabric machine counts differ");
  DynamicSimulator sim(fabric, scheduler, options);
  for (const Coflow& coflow : trace.coflows) {
    sim.submit(coflow);
  }
  sim.run();
  return sim.take_result();
}

}  // namespace ncdrf
