#include "sim/sim.h"

#include <utility>

#include "common/check.h"
#include "scenario/source.h"
#include "sim/engine.h"

namespace ncdrf {

RunResult simulate(const Fabric& fabric, scenario::WorkloadSource& source,
                   Scheduler& scheduler, const SimOptions& options) {
  NCDRF_CHECK(source.num_machines() == fabric.num_machines(),
              "workload and fabric machine counts differ");
  DynamicSimulator sim(fabric, scheduler, options);
  while (source.peek() != nullptr) {
    serve::Submission s = source.next();
    sim.submit(Coflow(s.coflow, s.submit_time, std::move(s.flows), s.weight,
                      s.client));
  }
  sim.run();
  return sim.take_result();
}

RunResult simulate(const Fabric& fabric, const Trace& trace,
                   Scheduler& scheduler, const SimOptions& options) {
  NCDRF_CHECK(trace.num_machines == fabric.num_machines(),
              "trace and fabric machine counts differ");
  scenario::TraceSource source(&trace);
  return simulate(fabric, source, scheduler, options);
}

}  // namespace ncdrf
