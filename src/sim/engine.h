// DynamicSimulator: the event-driven fluid engine underneath simulate(),
// exposed as an incremental API so workloads can *react* to completions —
// the pipelined, multi-stage computations that motivate non-clairvoyant
// scheduling in the first place (paper Sec. I/II: Tez, MapReduce Online).
//
// Usage:
//   DynamicSimulator sim(fabric, scheduler);
//   sim.set_completion_callback([&](const CoflowRecord& rec) {
//     if (auto next = job.next_stage(rec.id)) sim.submit(*next);
//   });
//   sim.submit(first_stage_coflow);
//   sim.run();
//   RunResult result = sim.take_result();
//
// Coflow ids must be unique per simulation; flow ids must be unique and
// non-negative (a fresh TraceBuilder-style counter per driver is enough).
// The engine's model, events and metrics are identical to simulate()'s —
// simulate() is a thin wrapper over this class.
#pragma once

#include <functional>
#include <memory>

#include "fabric/fabric.h"
#include "sched/scheduler.h"
#include "sim/sim.h"
#include "trace/trace.h"

namespace ncdrf {

class DynamicSimulator {
 public:
  using CompletionCallback = std::function<void(const CoflowRecord&)>;

  DynamicSimulator(const Fabric& fabric, Scheduler& scheduler,
                   SimOptions options = {});
  ~DynamicSimulator();

  DynamicSimulator(const DynamicSimulator&) = delete;
  DynamicSimulator& operator=(const DynamicSimulator&) = delete;

  // Registers a coflow to arrive at coflow.arrival_time(), which must not
  // lie in the past. Callable before run() and from within the completion
  // callback (that is the point).
  void submit(Coflow coflow);

  // Invoked at the instant any coflow completes, before the next
  // scheduling round — the hook for releasing successor stages.
  void set_completion_callback(CompletionCallback callback);

  // Runs until every submitted coflow has completed (including coflows
  // submitted by the callback along the way).
  void run();

  double now() const;
  int active_coflows() const;

  // Finalizes and returns the accumulated result (records sorted by
  // coflow id). The engine must be drained (run() returned, nothing
  // pending).
  RunResult take_result();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ncdrf
