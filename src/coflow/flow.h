// Flow: one point-to-point transfer inside a coflow.
//
// Plain data (Core Guidelines C.2: no invariant beyond what the owning
// Coflow validates). A flow f_k^{ij} in the paper's notation transfers
// `size_bits` from the uplink of `src` to the downlink of `dst`.
#pragma once

#include "fabric/fabric.h"

namespace ncdrf {

// Globally unique dense flow identifier, assigned by the trace/workload
// builder. Dense ids let the simulator index flow state in flat arrays.
using FlowId = int;
using CoflowId = int;

struct Flow {
  FlowId id = -1;
  CoflowId coflow = -1;
  MachineId src = -1;
  MachineId dst = -1;
  double size_bits = 0.0;
};

}  // namespace ncdrf
