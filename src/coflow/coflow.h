// Coflow abstraction (paper Sec. II-A).
//
// A coflow is a set of parallel flows between two computation stages with
// all-or-nothing semantics: it completes when its last flow completes.
// This header provides the static description (flows, arrival time) plus
// the demand-side math the paper defines on top of it:
//
//   demand vector      d_k[i]  — bits the coflow moves over link i (2m links)
//   bottleneck demand  d̄_k     — max_i d_k[i]               (Sec. II-A)
//   correlation vector c_k[i]  = d_k[i] / d̄_k               (Sec. II-A)
//   flow counts        n_k[i]  — number of flows touching link i (Sec. IV)
//   disparity          e_k     = d̄_k / min_{i: d_k[i]>0} d_k[i]   (Eq. 4)
//   progress           P_k     = min_{i: c_k[i]>0} a_k[i] / c_k[i] (Eq. 1)
#pragma once

#include <string>
#include <vector>

#include "coflow/flow.h"
#include "fabric/fabric.h"

namespace ncdrf {

// Demand-side view of a set of flows against a fabric: everything Eq. 1-5
// needs. Computed either from full flow sizes (clairvoyant) or from
// remaining sizes mid-run.
struct DemandVectors {
  std::vector<double> demand;       // d_k, indexed by LinkId, size 2m
  std::vector<int> flow_count;      // n_k, indexed by LinkId
  double bottleneck_demand = 0.0;   // d̄_k
  LinkId bottleneck_link = -1;      // b_k (first arg max)
  int bottleneck_flow_count = 0;    // n̄_k
  LinkId flow_count_bottleneck_link = -1;  // b̂_k (first arg max)

  // c_k[i] = demand[i] / bottleneck_demand; all-zero when the coflow has no
  // remaining demand.
  std::vector<double> correlation() const;

  // ĉ_k[i] = flow_count[i] / bottleneck_flow_count; what NC-DRF uses in
  // place of the (unknown) correlation vector.
  std::vector<double> flow_count_correlation() const;

  // e_k per Eq. 4: bottleneck demand over the smallest *non-zero* link
  // demand. 1.0 for a perfectly balanced coflow; requires some demand.
  double disparity() const;
};

// Computes demand vectors for `flows` whose per-flow sizes are
// `size_bits[f]` for each flow f (index-aligned with `flows`). Sizes must
// be non-negative; flows with zero size still count toward flow counts
// (they are "active" until marked done by the caller's filtering).
DemandVectors compute_demand(const Fabric& fabric,
                             const std::vector<Flow>& flows,
                             const std::vector<double>& size_bits);

// Coflow progress per Eq. 1: minimum demand-normalized allocation across
// links with positive demand, where `link_alloc_bps[i]` is the coflow's
// aggregate rate on link i. Returns 0 when the coflow has no demand.
double coflow_progress(const DemandVectors& demand,
                       const std::vector<double>& link_alloc_bps);

// Static description of a coflow as it appears in a trace.
class Coflow {
 public:
  // Requires: at least one flow; every flow's endpoints within the fabric
  // would be validated at use (the coflow itself is fabric-agnostic);
  // non-negative sizes; all flows carry this coflow's id; positive weight.
  Coflow(CoflowId id, double arrival_time_s, std::vector<Flow> flows,
         double weight = 1.0, int tenant = -1);

  CoflowId id() const { return id_; }
  double arrival_time() const { return arrival_time_; }
  const std::vector<Flow>& flows() const { return flows_; }

  // Relative share weight (tenant priority) honoured by the fair policies
  // (NC-DRF, DRF); 1.0 = equal share.
  double weight() const { return weight_; }

  // Submitting tenant/client, or -1 when the workload carries no
  // attribution (traditional traces). Tenant-aware policies (karma) and
  // the scenario spine's strategy evaluation key on this.
  int tenant() const { return tenant_; }

  int width() const { return static_cast<int>(flows_.size()); }

  // Size of the largest flow, bits ("length" for the Table I bins).
  double max_flow_bits() const { return max_flow_bits_; }

  // Sum of all flow sizes, bits.
  double total_bits() const { return total_bits_; }

  // Demand vectors against a fabric, from full (original) flow sizes.
  DemandVectors demand(const Fabric& fabric) const;

 private:
  CoflowId id_;
  double arrival_time_;
  std::vector<Flow> flows_;
  double weight_ = 1.0;
  int tenant_ = -1;
  double max_flow_bits_ = 0.0;
  double total_bits_ = 0.0;
};

// Table I bins: length threshold 5 MB on the largest flow, width threshold
// 50 flows (Sec. V-A.2).
enum class CoflowBin { kShortNarrow, kLongNarrow, kShortWide, kLongWide };

CoflowBin classify_bin(const Coflow& coflow);
std::string bin_name(CoflowBin bin);  // "SN", "LN", "SW", "LW"

}  // namespace ncdrf
