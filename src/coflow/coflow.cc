#include "coflow/coflow.h"

#include <algorithm>
#include <limits>

#include "common/units.h"

namespace ncdrf {

std::vector<double> DemandVectors::correlation() const {
  std::vector<double> c(demand.size(), 0.0);
  if (bottleneck_demand <= 0.0) return c;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    c[i] = demand[i] / bottleneck_demand;
  }
  return c;
}

std::vector<double> DemandVectors::flow_count_correlation() const {
  std::vector<double> c(flow_count.size(), 0.0);
  if (bottleneck_flow_count <= 0) return c;
  for (std::size_t i = 0; i < flow_count.size(); ++i) {
    c[i] = static_cast<double>(flow_count[i]) /
           static_cast<double>(bottleneck_flow_count);
  }
  return c;
}

double DemandVectors::disparity() const {
  NCDRF_CHECK(bottleneck_demand > 0.0, "disparity of a zero-demand coflow");
  double min_positive = std::numeric_limits<double>::infinity();
  for (const double d : demand) {
    if (d > 0.0) min_positive = std::min(min_positive, d);
  }
  return bottleneck_demand / min_positive;
}

DemandVectors compute_demand(const Fabric& fabric,
                             const std::vector<Flow>& flows,
                             const std::vector<double>& size_bits) {
  NCDRF_CHECK(flows.size() == size_bits.size(),
              "flows and sizes must be index-aligned");
  DemandVectors out;
  out.demand.assign(static_cast<std::size_t>(fabric.num_links()), 0.0);
  out.flow_count.assign(static_cast<std::size_t>(fabric.num_links()), 0);

  for (std::size_t f = 0; f < flows.size(); ++f) {
    const Flow& flow = flows[f];
    NCDRF_CHECK(size_bits[f] >= 0.0, "flow size must be non-negative");
    const auto up = static_cast<std::size_t>(fabric.uplink(flow.src));
    const auto down = static_cast<std::size_t>(fabric.downlink(flow.dst));
    out.demand[up] += size_bits[f];
    out.demand[down] += size_bits[f];
    out.flow_count[up] += 1;
    out.flow_count[down] += 1;
  }

  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (out.demand[idx] > out.bottleneck_demand) {
      out.bottleneck_demand = out.demand[idx];
      out.bottleneck_link = i;
    }
    if (out.flow_count[idx] > out.bottleneck_flow_count) {
      out.bottleneck_flow_count = out.flow_count[idx];
      out.flow_count_bottleneck_link = i;
    }
  }
  return out;
}

double coflow_progress(const DemandVectors& demand,
                       const std::vector<double>& link_alloc_bps) {
  NCDRF_CHECK(link_alloc_bps.size() == demand.demand.size(),
              "allocation vector must cover all links");
  if (demand.bottleneck_demand <= 0.0) return 0.0;
  double progress = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < demand.demand.size(); ++i) {
    const double c = demand.demand[i] / demand.bottleneck_demand;
    if (c > 0.0) progress = std::min(progress, link_alloc_bps[i] / c);
  }
  return progress;
}

Coflow::Coflow(CoflowId id, double arrival_time_s, std::vector<Flow> flows,
               double weight, int tenant)
    : id_(id),
      arrival_time_(arrival_time_s),
      flows_(std::move(flows)),
      weight_(weight),
      tenant_(tenant) {
  NCDRF_CHECK(id >= 0, "coflow id must be non-negative");
  NCDRF_CHECK(arrival_time_s >= 0.0, "arrival time must be non-negative");
  NCDRF_CHECK(weight > 0.0, "coflow weight must be positive");
  NCDRF_CHECK(!flows_.empty(), "a coflow needs at least one flow");
  for (const Flow& f : flows_) {
    NCDRF_CHECK(f.coflow == id_, "flow tagged with a different coflow id");
    NCDRF_CHECK(f.size_bits >= 0.0, "flow size must be non-negative");
    NCDRF_CHECK(f.src >= 0 && f.dst >= 0, "flow endpoints must be set");
    max_flow_bits_ = std::max(max_flow_bits_, f.size_bits);
    total_bits_ += f.size_bits;
  }
}

DemandVectors Coflow::demand(const Fabric& fabric) const {
  std::vector<double> sizes;
  sizes.reserve(flows_.size());
  for (const Flow& f : flows_) sizes.push_back(f.size_bits);
  return compute_demand(fabric, flows_, sizes);
}

CoflowBin classify_bin(const Coflow& coflow) {
  // Sec. V-A.2: short/long at 5 MB on the largest flow; narrow/wide at 50
  // flows.
  const bool is_short = coflow.max_flow_bits() < megabytes(5.0);
  const bool narrow = coflow.width() < 50;
  if (is_short && narrow) return CoflowBin::kShortNarrow;
  if (!is_short && narrow) return CoflowBin::kLongNarrow;
  if (is_short && !narrow) return CoflowBin::kShortWide;
  return CoflowBin::kLongWide;
}

std::string bin_name(CoflowBin bin) {
  switch (bin) {
    case CoflowBin::kShortNarrow:
      return "SN";
    case CoflowBin::kLongNarrow:
      return "LN";
    case CoflowBin::kShortWide:
      return "SW";
    case CoflowBin::kLongWide:
      return "LW";
  }
  NCDRF_CHECK(false, "unreachable: unknown bin");
  return {};
}

}  // namespace ncdrf
