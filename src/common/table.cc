#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace ncdrf {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  NCDRF_CHECK(!header_.empty(), "table needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  NCDRF_CHECK(row.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string AsciiTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << ' ';
    }
    os << "|\n";
  };

  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace ncdrf
