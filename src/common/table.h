// Plain-text table rendering for benchmark output. The bench binaries print
// each paper table/figure as an aligned ASCII table so the reproduction can
// be compared against the paper by eye (and diffed between runs).
#pragma once

#include <string>
#include <vector>

namespace ncdrf {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);

  // Renders the table with a header rule and column alignment.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ncdrf
