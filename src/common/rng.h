// Deterministic random number generation.
//
// All randomness in the library flows through Rng so that every experiment
// and property test is reproducible from a single 64-bit seed. The core
// generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64 —
// fast, high quality, and stable across platforms (unlike std::mt19937's
// distribution implementations, which vary by standard library).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ncdrf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Next raw 64-bit value.
  std::uint64_t next_u64();

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Exponential with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  // Pareto with scale `xm` > 0 and shape `alpha` > 0; heavy-tailed sizes.
  double pareto(double xm, double alpha);

  // Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma);

  // Standard normal via Box-Muller.
  double normal();

  // True with probability p in [0, 1].
  bool bernoulli(double p);

  // Index in [0, weights.size()) sampled proportionally to weights.
  // Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  // k distinct values sampled uniformly from [0, n) without replacement.
  // Requires k <= n.
  std::vector<int> sample_without_replacement(int n, int k);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace ncdrf
