#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace ncdrf {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  NCDRF_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NCDRF_CHECK(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double rate) {
  NCDRF_CHECK(rate > 0.0, "exponential rate must be positive");
  // 1 - uniform() is in (0, 1], so log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::pareto(double xm, double alpha) {
  NCDRF_CHECK(xm > 0.0 && alpha > 0.0, "pareto parameters must be positive");
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * normal());
}

double Rng::normal() {
  const double u1 = 1.0 - uniform();  // in (0, 1]
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

bool Rng::bernoulli(double p) {
  NCDRF_CHECK(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
  return uniform() < p;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) {
    NCDRF_CHECK(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  NCDRF_CHECK(total > 0.0, "weighted_index needs a positive total weight");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point edge: fall to last bucket
}

std::vector<int> Rng::sample_without_replacement(int n, int k) {
  NCDRF_CHECK(0 <= k && k <= n, "sample_without_replacement requires k <= n");
  // Partial Fisher-Yates over [0, n).
  std::vector<int> pool(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<std::size_t>(i)] = i;
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(uniform_int(i, n - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    out.push_back(pool[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace ncdrf
