// Unit helpers for the fluid-flow model.
//
// The whole library works in a single consistent unit system:
//   data   — bits   (double; fluid model, fractional bits are fine)
//   rate   — bits per second
//   time   — seconds
// These helpers exist so call sites read like the paper ("100 Mb flow on a
// 1 Gbps link") instead of carrying raw powers of ten around.
#pragma once

namespace ncdrf {

// Decimal (SI) prefixes, matching how network gear and the paper count.
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

constexpr double bits(double b) { return b; }
constexpr double kilobits(double kb) { return kb * kKilo; }
constexpr double megabits(double mb) { return mb * kMega; }
constexpr double gigabits(double gb) { return gb * kGiga; }

// Data sizes in the trace files are given in bytes-based units.
constexpr double bytes(double b) { return b * 8.0; }
constexpr double kilobytes(double kb) { return kb * 8.0 * kKilo; }
constexpr double megabytes(double mb) { return mb * 8.0 * kMega; }
constexpr double gigabytes(double gb) { return gb * 8.0 * kGiga; }

constexpr double bps(double r) { return r; }
constexpr double kbps(double r) { return r * kKilo; }
constexpr double mbps(double r) { return r * kMega; }
constexpr double gbps(double r) { return r * kGiga; }

constexpr double to_megabits(double bits_) { return bits_ / kMega; }
constexpr double to_gigabits(double bits_) { return bits_ / kGiga; }
constexpr double to_megabytes(double bits_) { return bits_ / (8.0 * kMega); }
constexpr double to_gbps(double rate_bps) { return rate_bps / kGiga; }

constexpr double seconds(double s) { return s; }
constexpr double milliseconds(double ms) { return ms / kKilo; }

}  // namespace ncdrf
