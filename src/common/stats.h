// Small statistics toolkit used by the evaluation metrics and benches:
// summary statistics (Table II style) and weighted empirical CDFs
// (Figs. 5a, 6a are distributions "over time instants", i.e. weighted by
// interval length).
#pragma once

#include <cstddef>
#include <vector>

namespace ncdrf {

// Five-number-style summary over a sample. Percentiles use linear
// interpolation between order statistics (same convention as numpy).
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Computes the summary of `values`. Returns a zeroed Summary for an empty
// input.
Summary summarize(std::vector<double> values);

// Percentile (p in [0, 100]) of `values` with linear interpolation.
// Requires a non-empty input.
double percentile(std::vector<double> values, double p);

// Weighted empirical distribution. Add (value, weight) points — e.g.
// (progress disparity, interval length) — then query quantiles or the
// full CDF curve.
class WeightedCdf {
 public:
  // Adds one observation with the given non-negative weight. Zero-weight
  // points are ignored.
  void add(double value, double weight = 1.0);

  bool empty() const { return points_.empty(); }
  double total_weight() const { return total_weight_; }

  // Smallest value v such that at least fraction q of the weight is <= v.
  // Requires q in [0, 1] and a non-empty distribution.
  double quantile(double q) const;

  // Fraction of weight at values <= v.
  double cdf_at(double v) const;

  double min() const;
  double max() const;

  // Weighted mean of the observations.
  double mean() const;

  // The full curve as (value, cumulative fraction) steps, sorted by value.
  std::vector<std::pair<double, double>> curve() const;

 private:
  void sort_if_needed() const;

  mutable std::vector<std::pair<double, double>> points_;  // (value, weight)
  mutable bool sorted_ = true;
  double total_weight_ = 0.0;
};

}  // namespace ncdrf
