#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ncdrf {

double percentile(std::vector<double> values, double p) {
  NCDRF_CHECK(!values.empty(), "percentile of empty sample");
  NCDRF_CHECK(p >= 0.0 && p <= 100.0, "percentile p must be in [0, 100]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (const double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  s.p50 = percentile(values, 50.0);
  s.p95 = percentile(values, 95.0);
  s.p99 = percentile(values, 99.0);
  return s;
}

void WeightedCdf::add(double value, double weight) {
  NCDRF_CHECK(weight >= 0.0, "CDF weights must be non-negative");
  if (weight == 0.0) return;
  points_.emplace_back(value, weight);
  total_weight_ += weight;
  sorted_ = false;
}

void WeightedCdf::sort_if_needed() const {
  if (!sorted_) {
    std::sort(points_.begin(), points_.end());
    sorted_ = true;
  }
}

double WeightedCdf::quantile(double q) const {
  NCDRF_CHECK(!points_.empty(), "quantile of empty distribution");
  NCDRF_CHECK(q >= 0.0 && q <= 1.0, "quantile q must be in [0, 1]");
  sort_if_needed();
  const double target = q * total_weight_;
  double acc = 0.0;
  for (const auto& [value, weight] : points_) {
    acc += weight;
    if (acc >= target) return value;
  }
  return points_.back().first;
}

double WeightedCdf::cdf_at(double v) const {
  if (points_.empty()) return 0.0;
  sort_if_needed();
  double acc = 0.0;
  for (const auto& [value, weight] : points_) {
    if (value > v) break;
    acc += weight;
  }
  return acc / total_weight_;
}

double WeightedCdf::min() const {
  NCDRF_CHECK(!points_.empty(), "min of empty distribution");
  sort_if_needed();
  return points_.front().first;
}

double WeightedCdf::max() const {
  NCDRF_CHECK(!points_.empty(), "max of empty distribution");
  sort_if_needed();
  return points_.back().first;
}

double WeightedCdf::mean() const {
  NCDRF_CHECK(!points_.empty(), "mean of empty distribution");
  double acc = 0.0;
  for (const auto& [value, weight] : points_) acc += value * weight;
  return acc / total_weight_;
}

std::vector<std::pair<double, double>> WeightedCdf::curve() const {
  sort_if_needed();
  std::vector<std::pair<double, double>> out;
  out.reserve(points_.size());
  double acc = 0.0;
  for (const auto& [value, weight] : points_) {
    acc += weight;
    if (!out.empty() && out.back().first == value) {
      out.back().second = acc / total_weight_;
    } else {
      out.emplace_back(value, acc / total_weight_);
    }
  }
  return out;
}

}  // namespace ncdrf
