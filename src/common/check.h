// Runtime invariant checking for the NC-DRF library.
//
// NCDRF_CHECK(cond, msg) validates preconditions and invariants in both
// debug and release builds; violations throw ncdrf::CheckError carrying the
// failing expression, location and a caller-supplied message. Library code
// uses it at API boundaries (bad arguments, malformed traces) and for
// internal invariants whose violation would silently corrupt results
// (e.g. link over-subscription in an allocation).
#pragma once

#include <stdexcept>
#include <string>

namespace ncdrf {

// Error thrown when a checked invariant fails. Deriving from
// std::logic_error: a failed check is a programming or input error, not an
// expected runtime condition.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace ncdrf

// Checks `cond`; on failure throws ncdrf::CheckError with context.
#define NCDRF_CHECK(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ncdrf::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)
