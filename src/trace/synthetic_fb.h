// Synthetic stand-in for the Facebook Coflow-Benchmark trace.
//
// The paper replays `FB2010-1Hr-150-0`: 526 coflows reduced to rack level
// from a one-hour Hive/MapReduce trace of a 3000-machine, 150-rack
// Facebook cluster. That file is not redistributable here, so this
// generator produces a *statistical twin* (DESIGN.md, substitutions):
//
//   - 526 coflows over 150 racks arriving across one hour;
//   - Table I bin mix by construction: 60% short-narrow, 16% long-narrow,
//     12% short-wide, 12% long-wide (length threshold 5 MB on the largest
//     flow, width threshold 50 flows);
//   - heavy-tailed (Pareto) coflow sizes for long coflows;
//   - bounded intra-coflow flow-size disparity (uniform ×[0.5, 2] around a
//     per-coflow mean), reflecting the load-balancing principle the
//     paper's analysis leans on (Sec. IV-A);
//   - Zipf-skewed rack popularity and bursty (wave-based) arrivals — the
//     two properties of the production trace that create the link
//     hotspots and coflow contention the paper's slowdown numbers imply.
//
// Everything is driven by one seed; the same seed always yields the same
// trace. If the real benchmark file is available, load it with
// load_benchmark_trace() instead — both produce the same Trace type.
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace ncdrf {

struct SyntheticFbOptions {
  std::uint64_t seed = 20180701;  // ICDCS'18-flavored default
  int num_coflows = 526;
  int num_racks = 150;
  double duration_s = 3600.0;

  // Table I target bin fractions (SN + LN + SW + LW must sum to 1).
  double frac_short_narrow = 0.60;
  double frac_long_narrow = 0.16;
  double frac_short_wide = 0.12;
  double frac_long_wide = 0.12;

  // Cap on flows per coflow, to bound simulation cost. The real trace has
  // wider coflows; widening this does not change any policy ordering.
  int max_flows_per_coflow = 1000;

  // Per-reducer shuffle skew: each reducer's total volume is scaled by a
  // lognormal(0, sigma) multiplier (clipped to [0.1, 10]). Flows *into* one
  // reducer stay near-identical (the load-balanced mapper side, matching
  // Theorem 1's assumption), but demand across a coflow's links varies —
  // exactly the disparity e_k that separates NC-DRF from clairvoyant DRF.
  double reducer_skew_sigma = 1.6;

  // Endpoint popularity: rack r (in a seed-specific permutation) is chosen
  // with weight 1/(r+1)^rack_skew. 0 = uniform; production traces are
  // heavily skewed, which creates the hotspot links coflows contend on.
  double rack_skew = 1.3;

  // Wave-based arrivals: this fraction of coflows arrives clustered around
  // `num_bursts` burst centers (exponential jitter, mean `burst_jitter_s`);
  // the rest arrive uniformly over the hour.
  double burst_fraction = 0.75;
  int num_bursts = 12;
  double burst_jitter_s = 10.0;

  // Long-coflow per-flow mean: Pareto(xm = 4 MB, alpha) capped at
  // `long_mean_cap_mb`. Lower alpha = heavier tail = more contention.
  double long_size_alpha = 1.0;
  double long_mean_cap_mb = 300.0;
};

Trace generate_synthetic_fb(const SyntheticFbOptions& options = {});

}  // namespace ncdrf
