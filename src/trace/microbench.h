// The paper's EC2 micro-benchmark workload (Sec. V-B, Table III):
// three coflows with distinct communication patterns on a 60-machine
// cluster with 200 Mbps port links.
//
//   coflow-A  all-to-all          360 flows  arrives at  0 s
//             (10 groups of 6 machines, 6×6 shuffle inside each group)
//   coflow-B  pairwise one-to-one  60 flows  arrives at 10 s
//             (machines i ↔ i+30 for the first 30 machines, both ways)
//   coflow-C  pairwise one-to-one  60 flows  arrives at 20 s
//             (machines j ↔ j+15 inside each half of the cluster)
//
// Flow sizes are drawn uniformly from [30, 100] MB, as in the paper
// ("each randomly configured its transferred data size between 30 MB and
// 100 MB"), from the given seed.
#pragma once

#include <cstdint>

#include "trace/trace.h"

namespace ncdrf {

struct MicrobenchOptions {
  std::uint64_t seed = 7;
  int num_machines = 60;
  double min_flow_bits = 8.0 * 30e6;   // 30 MB
  double max_flow_bits = 8.0 * 100e6;  // 100 MB
  double arrival_a_s = 0.0;
  double arrival_b_s = 10.0;
  double arrival_c_s = 20.0;
};

// Builds the Table III trace. Coflow ids 0/1/2 are A/B/C.
Trace build_testbed_trace(const MicrobenchOptions& options = {});

}  // namespace ncdrf
