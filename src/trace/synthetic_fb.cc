#include "trace/synthetic_fb.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"

namespace ncdrf {
namespace {

constexpr double kLengthThresholdBits = 8.0 * 5e6;  // 5 MB
constexpr int kWidthThreshold = 50;                 // flows

struct Shape {
  int mappers = 0;
  int reducers = 0;
};

// Mapper/reducer counts for a narrow coflow (< 50 flows). Small
// MapReduce-style fan-outs dominate the FB trace.
Shape narrow_shape(Rng& rng) {
  for (;;) {
    Shape s;
    s.mappers = static_cast<int>(rng.uniform_int(1, 7));
    s.reducers = static_cast<int>(rng.uniform_int(1, 7));
    if (s.mappers * s.reducers < kWidthThreshold) return s;
  }
}

// Counts for a wide coflow (>= 50 flows), capped to bound sim cost.
// Mapper counts are drawn log-uniformly up to the full rack count: the
// production trace contains shuffles touching nearly every rack, which
// put O(100) flows of one coflow on a single reducer downlink — the
// pattern that starves narrow coflows under per-flow fairness.
Shape wide_shape(Rng& rng, int num_racks, int max_flows) {
  Shape s;
  const double log_lo = std::log(8.0);
  const double log_hi = std::log(static_cast<double>(num_racks));
  s.mappers = std::min(
      static_cast<int>(std::exp(rng.uniform(log_lo, log_hi))), num_racks);
  const int min_reducers =
      std::max(1, (kWidthThreshold + s.mappers - 1) / s.mappers);
  const int max_reducers =
      std::max(min_reducers, std::min(max_flows / s.mappers, num_racks));
  s.reducers = static_cast<int>(
      rng.uniform_int(min_reducers, max_reducers));
  return s;
}

// Mapper-side spread: flows into the same reducer are near-identical
// (the load-balancing principle), differing only by a small factor.
double spread(Rng& rng, double mean_bits) {
  return mean_bits * rng.uniform(0.7, 1.4);
}

// Draws `count` distinct racks with Zipf(skew) popularity over a
// seed-specific rack permutation.
class SkewedRackSampler {
 public:
  SkewedRackSampler(Rng& rng, int num_racks, double skew)
      : permutation_(static_cast<std::size_t>(num_racks)) {
    for (int r = 0; r < num_racks; ++r) {
      permutation_[static_cast<std::size_t>(r)] = r;
    }
    rng.shuffle(permutation_);
    weights_.reserve(static_cast<std::size_t>(num_racks));
    for (int r = 0; r < num_racks; ++r) {
      weights_.push_back(1.0 / std::pow(r + 1.0, skew));
    }
  }

  std::vector<int> sample(Rng& rng, int count) const {
    std::vector<double> weights = weights_;
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      const std::size_t pick = rng.weighted_index(weights);
      out.push_back(permutation_[pick]);
      weights[pick] = 0.0;  // without replacement
    }
    return out;
  }

 private:
  std::vector<int> permutation_;
  std::vector<double> weights_;
};

}  // namespace

Trace generate_synthetic_fb(const SyntheticFbOptions& options) {
  NCDRF_CHECK(options.num_coflows >= 1, "need at least one coflow");
  NCDRF_CHECK(options.num_racks >= 2, "need at least two racks");
  NCDRF_CHECK(options.duration_s > 0.0, "duration must be positive");
  NCDRF_CHECK(options.max_flows_per_coflow >= kWidthThreshold,
              "flow cap must allow wide coflows");
  NCDRF_CHECK(options.rack_skew >= 0.0, "rack skew must be non-negative");
  NCDRF_CHECK(options.burst_fraction >= 0.0 && options.burst_fraction <= 1.0,
              "burst fraction must be in [0, 1]");
  NCDRF_CHECK(options.num_bursts >= 1, "need at least one burst center");
  const double frac_sum =
      options.frac_short_narrow + options.frac_long_narrow +
      options.frac_short_wide + options.frac_long_wide;
  NCDRF_CHECK(std::abs(frac_sum - 1.0) < 1e-9,
              "bin fractions must sum to 1");

  Rng rng(options.seed);
  TraceBuilder builder(options.num_racks);
  const SkewedRackSampler racks(rng, options.num_racks, options.rack_skew);

  // Wave centers for bursty arrivals.
  std::vector<double> bursts;
  bursts.reserve(static_cast<std::size_t>(options.num_bursts));
  for (int b = 0; b < options.num_bursts; ++b) {
    bursts.push_back(rng.uniform(0.0, options.duration_s));
  }

  // Deterministic bin assignment hitting the Table I mix as exactly as
  // rounding allows, then shuffled so bins are interleaved in time.
  const int n = options.num_coflows;
  const int n_sn = static_cast<int>(std::round(n * options.frac_short_narrow));
  const int n_ln = static_cast<int>(std::round(n * options.frac_long_narrow));
  const int n_sw = static_cast<int>(std::round(n * options.frac_short_wide));
  const int n_lw = std::max(n - n_sn - n_ln - n_sw, 0);
  std::vector<int> bins;  // 0=SN 1=LN 2=SW 3=LW
  bins.insert(bins.end(), static_cast<std::size_t>(n_sn), 0);
  bins.insert(bins.end(), static_cast<std::size_t>(n_ln), 1);
  bins.insert(bins.end(), static_cast<std::size_t>(n_sw), 2);
  bins.insert(bins.end(), static_cast<std::size_t>(n_lw), 3);
  bins.resize(static_cast<std::size_t>(n), 0);
  rng.shuffle(bins);

  for (int c = 0; c < n; ++c) {
    const int bin = bins[static_cast<std::size_t>(c)];
    const bool is_long = bin == 1 || bin == 3;
    const bool wide = bin == 2 || bin == 3;

    const Shape shape =
        wide ? wide_shape(rng, options.num_racks, options.max_flows_per_coflow)
             : narrow_shape(rng);

    // Mean flow size. Short: all flows stay under 5 MB (mean ≤ 2.4 MB and
    // spread ≤ ×2 keeps the max below the threshold). Long: heavy-tailed
    // Pareto mean, forced above the threshold afterwards if the draw was
    // small.
    const double mean_bits =
        is_long ? std::min(megabytes(rng.pareto(4.0, options.long_size_alpha)),
                           megabytes(options.long_mean_cap_mb))
                : megabytes(rng.uniform(0.05, 2.4));

    // Wave-based or uniform arrival.
    double arrival;
    if (rng.bernoulli(options.burst_fraction)) {
      const auto b = static_cast<std::size_t>(
          rng.uniform_int(0, options.num_bursts - 1));
      arrival = std::min(bursts[b] + rng.exponential(1.0 /
                                                     options.burst_jitter_s),
                         options.duration_s * (1.0 - 1e-9));
    } else {
      arrival = rng.uniform(0.0, options.duration_s);
    }

    builder.begin_coflow(arrival);
    const std::vector<int> mappers = racks.sample(rng, shape.mappers);
    const std::vector<int> reducers = racks.sample(rng, shape.reducers);

    // Per-reducer volume multipliers (partition skew across reducers).
    std::vector<double> reducer_mult(
        static_cast<std::size_t>(shape.reducers));
    for (double& mult : reducer_mult) {
      mult = std::clamp(rng.lognormal(0.0, options.reducer_skew_sigma), 0.05,
                        20.0);
    }

    std::vector<double> sizes;
    sizes.reserve(static_cast<std::size_t>(shape.mappers) *
                  static_cast<std::size_t>(shape.reducers));
    double max_size = 0.0;
    for (int m = 0; m < shape.mappers; ++m) {
      for (int r = 0; r < shape.reducers; ++r) {
        const double s =
            spread(rng, mean_bits) * reducer_mult[static_cast<std::size_t>(r)];
        sizes.push_back(s);
        max_size = std::max(max_size, s);
      }
    }
    // Enforce the bin's length class exactly.
    double scale = 1.0;
    if (is_long && max_size < kLengthThresholdBits) {
      scale = kLengthThresholdBits * 1.05 / max_size;
    } else if (!is_long && max_size >= kLengthThresholdBits) {
      scale = kLengthThresholdBits * 0.95 / max_size;
    }

    std::size_t idx = 0;
    for (const int m : mappers) {
      for (const int r : reducers) {
        builder.add_flow(m, r, sizes[idx++] * scale);
      }
    }
  }
  return builder.build();
}

}  // namespace ncdrf
