#include "trace/trace_stats.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace ncdrf {

TraceStats compute_trace_stats(const Trace& trace, const Fabric& fabric) {
  NCDRF_CHECK(trace.num_machines == fabric.num_machines(),
              "trace and fabric machine counts differ");
  NCDRF_CHECK(!trace.coflows.empty(), "empty trace");

  TraceStats stats;
  stats.num_coflows = static_cast<int>(trace.coflows.size());
  stats.num_flows = trace.total_flows;

  std::vector<double> widths;
  std::vector<double> lengths;
  std::vector<double> totals;
  std::vector<double> disparities;
  std::vector<double> link_bits(
      static_cast<std::size_t>(fabric.num_links()), 0.0);

  double first_arrival = trace.coflows.front().arrival_time();
  double last_arrival = first_arrival;
  for (const Coflow& coflow : trace.coflows) {
    widths.push_back(coflow.width());
    lengths.push_back(to_megabytes(coflow.max_flow_bits()));
    totals.push_back(to_megabytes(coflow.total_bits()));
    stats.total_bytes += coflow.total_bits() / 8.0;
    stats.bins[classify_bin(coflow)] += 1;
    first_arrival = std::min(first_arrival, coflow.arrival_time());
    last_arrival = std::max(last_arrival, coflow.arrival_time());

    const DemandVectors d = coflow.demand(fabric);
    disparities.push_back(d.disparity());
    for (std::size_t i = 0; i < d.demand.size(); ++i) {
      link_bits[i] += d.demand[i];
    }
  }
  stats.arrival_span_s = last_arrival - first_arrival;
  stats.width = summarize(std::move(widths));
  stats.max_flow_mb = summarize(std::move(lengths));
  stats.coflow_total_mb = summarize(std::move(totals));
  stats.disparity = summarize(std::move(disparities));

  const double span = std::max(stats.arrival_span_s, 1.0);
  std::vector<double> loads;
  loads.reserve(link_bits.size());
  for (const double bits_total : link_bits) {
    loads.push_back(to_gbps(bits_total / span));
  }
  const Summary load = summarize(loads);
  stats.mean_link_load_gbps = load.mean;
  stats.max_link_load_gbps = load.max;
  stats.link_load_p95_gbps = load.p95;
  return stats;
}

std::string format_trace_stats(const TraceStats& stats) {
  std::ostringstream os;
  os << stats.num_coflows << " coflows, " << stats.num_flows << " flows, "
     << stats.total_bytes / 1e9 << " GB over " << stats.arrival_span_s
     << " s\n";
  os << "width (flows/coflow):  mean " << stats.width.mean << ", p50 "
     << stats.width.p50 << ", p95 " << stats.width.p95 << ", max "
     << stats.width.max << "\n";
  os << "length (max flow MB):  mean " << stats.max_flow_mb.mean
     << ", p50 " << stats.max_flow_mb.p50 << ", p95 "
     << stats.max_flow_mb.p95 << ", max " << stats.max_flow_mb.max << "\n";
  os << "coflow size (MB):      mean " << stats.coflow_total_mb.mean
     << ", p95 " << stats.coflow_total_mb.p95 << ", max "
     << stats.coflow_total_mb.max << "\n";
  os << "disparity e_k (Eq.4):  mean " << stats.disparity.mean << ", p95 "
     << stats.disparity.p95 << ", max " << stats.disparity.max << "\n";
  os << "bins:";
  for (const auto& [bin, count] : stats.bins) {
    os << ' ' << bin_name(bin) << '=' << count;
  }
  os << "\n";
  os << "offered link load:     mean " << stats.mean_link_load_gbps
     << " Gbps, p95 " << stats.link_load_p95_gbps << ", hotspot "
     << stats.max_link_load_gbps << " Gbps\n";
  return os.str();
}

}  // namespace ncdrf
