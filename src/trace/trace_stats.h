// Statistical profile of a workload trace: the quantities that determine
// how a trace exercises coflow schedulers (width/length/size
// distributions, Table I bin mix, intra-coflow disparity e_k, per-link
// load and hotspot skew, arrival pattern). Used to validate the synthetic
// generator against the published characteristics of the Facebook trace
// and to document any workload a user brings.
#pragma once

#include <map>
#include <string>

#include "coflow/coflow.h"
#include "common/stats.h"
#include "fabric/fabric.h"
#include "trace/trace.h"

namespace ncdrf {

struct TraceStats {
  int num_coflows = 0;
  int num_flows = 0;
  double total_bytes = 0.0;
  double arrival_span_s = 0.0;

  Summary width;           // flows per coflow
  Summary max_flow_mb;     // "length" per coflow
  Summary coflow_total_mb;
  Summary disparity;       // e_k per coflow (Eq. 4)
  std::map<CoflowBin, int> bins;

  // Static per-link load (total bytes crossing each link / span).
  double mean_link_load_gbps = 0.0;
  double max_link_load_gbps = 0.0;   // the hotspot
  double link_load_p95_gbps = 0.0;
};

TraceStats compute_trace_stats(const Trace& trace, const Fabric& fabric);

// Multi-line human-readable report.
std::string format_trace_stats(const TraceStats& stats);

}  // namespace ncdrf
