// Reusable communication patterns for building coflows: the shapes that
// recur throughout the coflow literature and this paper's evaluation
// (all-to-all shuffles, pairwise one-to-one stages, many-to-one incast,
// one-to-many broadcast). Each helper appends one coflow's worth of flows
// to an open TraceBuilder coflow; sizes come from a caller-supplied
// generator so patterns compose with any size distribution.
#pragma once

#include <functional>
#include <vector>

#include "trace/trace.h"

namespace ncdrf {

// Produces the size (bits) of the next flow; invoked once per flow in a
// deterministic order, so seeding the underlying RNG fixes the workload.
using SizeFn = std::function<double()>;

// MapReduce-style shuffle: every machine in `sources` sends one flow to
// every machine in `destinations` (|S|×|D| flows). Sources and
// destinations may overlap (self-rack flows use both port links of the
// machine).
void add_shuffle(TraceBuilder& builder, const std::vector<MachineId>& sources,
                 const std::vector<MachineId>& destinations,
                 const SizeFn& size);

// All-to-all within a group: shorthand for add_shuffle(group, group, ...)
// — the paper's coflow-A pattern (Table III).
void add_all_to_all(TraceBuilder& builder,
                    const std::vector<MachineId>& group, const SizeFn& size);

// Pairwise one-to-one: flow i goes sources[i] → destinations[i]; when
// `bidirectional`, the reverse flow is added too — the paper's coflow-B/C
// pattern. Requires equal-length vectors.
void add_pairwise(TraceBuilder& builder,
                  const std::vector<MachineId>& sources,
                  const std::vector<MachineId>& destinations,
                  const SizeFn& size, bool bidirectional = false);

// Incast: every source sends one flow to the single aggregator — the
// hotspot pattern that stresses a single downlink.
void add_incast(TraceBuilder& builder, const std::vector<MachineId>& sources,
                MachineId aggregator, const SizeFn& size);

// Broadcast: the root sends one flow to every destination.
void add_broadcast(TraceBuilder& builder, MachineId root,
                   const std::vector<MachineId>& destinations,
                   const SizeFn& size);

// [first, first + count) as a machine list, for group construction.
std::vector<MachineId> machine_range(MachineId first, int count);

}  // namespace ncdrf
