#include "trace/patterns.h"

#include "common/check.h"

namespace ncdrf {

void add_shuffle(TraceBuilder& builder, const std::vector<MachineId>& sources,
                 const std::vector<MachineId>& destinations,
                 const SizeFn& size) {
  NCDRF_CHECK(!sources.empty() && !destinations.empty(),
              "shuffle needs sources and destinations");
  for (const MachineId src : sources) {
    for (const MachineId dst : destinations) {
      builder.add_flow(src, dst, size());
    }
  }
}

void add_all_to_all(TraceBuilder& builder,
                    const std::vector<MachineId>& group, const SizeFn& size) {
  add_shuffle(builder, group, group, size);
}

void add_pairwise(TraceBuilder& builder,
                  const std::vector<MachineId>& sources,
                  const std::vector<MachineId>& destinations,
                  const SizeFn& size, bool bidirectional) {
  NCDRF_CHECK(sources.size() == destinations.size(),
              "pairwise pattern needs equal-length endpoint lists");
  NCDRF_CHECK(!sources.empty(), "pairwise pattern needs at least one pair");
  for (std::size_t i = 0; i < sources.size(); ++i) {
    builder.add_flow(sources[i], destinations[i], size());
    if (bidirectional) {
      builder.add_flow(destinations[i], sources[i], size());
    }
  }
}

void add_incast(TraceBuilder& builder, const std::vector<MachineId>& sources,
                MachineId aggregator, const SizeFn& size) {
  NCDRF_CHECK(!sources.empty(), "incast needs at least one source");
  for (const MachineId src : sources) {
    builder.add_flow(src, aggregator, size());
  }
}

void add_broadcast(TraceBuilder& builder, MachineId root,
                   const std::vector<MachineId>& destinations,
                   const SizeFn& size) {
  NCDRF_CHECK(!destinations.empty(),
              "broadcast needs at least one destination");
  for (const MachineId dst : destinations) {
    builder.add_flow(root, dst, size());
  }
}

std::vector<MachineId> machine_range(MachineId first, int count) {
  NCDRF_CHECK(first >= 0 && count >= 1, "invalid machine range");
  std::vector<MachineId> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(first + i);
  return out;
}

}  // namespace ncdrf
