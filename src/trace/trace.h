// Trace: an ordered workload of coflows against a fabric of a given size,
// with a dense global FlowId space so the simulator can keep per-flow state
// in flat arrays.
#pragma once

#include <vector>

#include "coflow/coflow.h"

namespace ncdrf {

struct Trace {
  int num_machines = 0;
  // Sorted by (arrival_time, id); coflow ids are dense [0, coflows.size()).
  std::vector<Coflow> coflows;
  // Dense FlowId space: every flow id is unique in [0, total_flows).
  int total_flows = 0;

  double total_bits() const;
};

// Incrementally builds a valid Trace: assigns dense coflow and flow ids,
// validates endpoints against the machine count, and sorts by arrival.
class TraceBuilder {
 public:
  explicit TraceBuilder(int num_machines);

  // Opens a new coflow; flows are added to the most recently opened one.
  // Returns the coflow's id. `weight` is the coflow's relative share
  // weight (must be positive; 1.0 = equal share). `tenant` is the
  // submitting client (-1 = unattributed).
  CoflowId begin_coflow(double arrival_time_s, double weight = 1.0,
                        int tenant = -1);

  // Adds a flow src→dst of `size_bits` to the open coflow. Endpoints must
  // be machines in [0, num_machines); size must be positive.
  void add_flow(MachineId src, MachineId dst, double size_bits);

  // Finalizes: every coflow must have at least one flow. Coflow ids are
  // reassigned densely in (arrival, original id) order, so
  // trace.coflows[k].id() == k.
  Trace build();

 private:
  struct PendingCoflow {
    CoflowId id;
    double arrival;
    double weight;
    int tenant;
    std::vector<Flow> flows;
  };

  int num_machines_;
  std::vector<PendingCoflow> pending_;
  int next_flow_id_ = 0;
};

}  // namespace ncdrf
