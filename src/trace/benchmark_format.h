// Reader/writer for the Coflow-Benchmark text format (Chowdhury,
// https://github.com/coflow/coflow-benchmark), the rack-level Facebook
// trace format CoflowSim consumes and the paper replays (Sec. V-A):
//
//   <numRacks> <numCoflows>
//   <id> <arrivalMillis> <M> <mapperRack_1 ... mapperRack_M>
//                        <R> <reducerRack_1:totalMB ... reducerRack_R:totalMB>
//
// Each reducer's total shuffle volume is split evenly across the M
// mappers, yielding M×R flows per coflow. Rack numbering in published
// traces is 1-based; this reader accepts 1-based input (detected when a
// rack id equals numRacks) and 0-based input alike.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.h"

namespace ncdrf {

// Parses a Coflow-Benchmark trace from a stream. Throws CheckError on
// malformed input (wrong counts, out-of-range racks, non-positive sizes).
Trace parse_benchmark_trace(std::istream& in);

// Convenience overloads.
Trace parse_benchmark_trace_string(const std::string& text);
Trace load_benchmark_trace(const std::string& path);

// Serializes a trace in the same format (0-based racks are written
// 1-based, matching the published files). Flow sizes are re-aggregated to
// per-reducer totals, so parse(serialize(t)) reproduces t only for traces
// whose coflows are mapper-uniform (as benchmark traces are).
std::string serialize_benchmark_trace(const Trace& trace);

}  // namespace ncdrf
