#include "trace/microbench.h"

#include "common/check.h"
#include "common/rng.h"

namespace ncdrf {

Trace build_testbed_trace(const MicrobenchOptions& options) {
  NCDRF_CHECK(options.num_machines == 60,
              "Table III is defined for exactly 60 machines");
  NCDRF_CHECK(options.min_flow_bits > 0.0 &&
                  options.min_flow_bits <= options.max_flow_bits,
              "invalid flow size range");

  Rng rng(options.seed);
  TraceBuilder builder(options.num_machines);
  auto size = [&] {
    return rng.uniform(options.min_flow_bits, options.max_flow_bits);
  };

  // Coflow A: 10 groups of 6 machines, all-to-all within each group
  // (6×6 including self-rack pairs, matching "6×6 communication" and the
  // 360-flow total: 10 × 36).
  builder.begin_coflow(options.arrival_a_s);
  for (int group = 0; group < 10; ++group) {
    const int base = group * 6;
    for (int s = 0; s < 6; ++s) {
      for (int d = 0; d < 6; ++d) {
        builder.add_flow(base + s, base + d, size());
      }
    }
  }

  // Coflow B: pairwise one-to-one between machine i and machine i+30 for
  // the first 30 machines; both directions → 60 flows.
  builder.begin_coflow(options.arrival_b_s);
  for (int i = 0; i < 30; ++i) {
    builder.add_flow(i, i + 30, size());
    builder.add_flow(i + 30, i, size());
  }

  // Coflow C: pairwise one-to-one between machine j and machine j+15 for
  // the first 15 machines of each half; both directions → 60 flows.
  // (The paper's index ranges contain an off-by-one; 15 pairs per half is
  // the reading consistent with its stated 60-flow total.)
  builder.begin_coflow(options.arrival_c_s);
  for (int j = 0; j < 15; ++j) {
    builder.add_flow(j, j + 15, size());
    builder.add_flow(j + 15, j, size());
    builder.add_flow(30 + j, 45 + j, size());
    builder.add_flow(45 + j, 30 + j, size());
  }

  return builder.build();
}

}  // namespace ncdrf
