#include "trace/benchmark_format.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "common/check.h"
#include "common/units.h"

namespace ncdrf {
namespace {

struct RawCoflow {
  long long id = 0;
  double arrival_ms = 0.0;
  std::vector<int> mappers;
  std::vector<std::pair<int, double>> reducers;  // (rack, total MB)
};

}  // namespace

Trace parse_benchmark_trace(std::istream& in) {
  int num_racks = 0;
  int num_coflows = 0;
  NCDRF_CHECK(static_cast<bool>(in >> num_racks >> num_coflows),
              "trace header must be '<numRacks> <numCoflows>'");
  NCDRF_CHECK(num_racks >= 1, "trace must have at least one rack");
  NCDRF_CHECK(num_coflows >= 1, "trace must have at least one coflow");

  std::vector<RawCoflow> raw;
  raw.reserve(static_cast<std::size_t>(num_coflows));
  int min_rack = num_racks + 1;
  for (int c = 0; c < num_coflows; ++c) {
    RawCoflow rc;
    int num_mappers = 0;
    NCDRF_CHECK(static_cast<bool>(in >> rc.id >> rc.arrival_ms >> num_mappers),
                "malformed coflow line (id/arrival/mapper count)");
    NCDRF_CHECK(rc.arrival_ms >= 0.0, "negative arrival time in trace");
    NCDRF_CHECK(num_mappers >= 1, "coflow must have at least one mapper");
    for (int m = 0; m < num_mappers; ++m) {
      int rack = 0;
      NCDRF_CHECK(static_cast<bool>(in >> rack), "missing mapper rack");
      rc.mappers.push_back(rack);
      min_rack = std::min(min_rack, rack);
    }
    int num_reducers = 0;
    NCDRF_CHECK(static_cast<bool>(in >> num_reducers),
                "missing reducer count");
    NCDRF_CHECK(num_reducers >= 1, "coflow must have at least one reducer");
    for (int r = 0; r < num_reducers; ++r) {
      std::string token;
      NCDRF_CHECK(static_cast<bool>(in >> token), "missing reducer entry");
      const std::size_t colon = token.find(':');
      NCDRF_CHECK(colon != std::string::npos,
                  "reducer entry must be 'rack:sizeMB', got '" + token + "'");
      int rack = 0;
      double size_mb = 0.0;
      try {
        rack = std::stoi(token.substr(0, colon));
        size_mb = std::stod(token.substr(colon + 1));
      } catch (const std::exception&) {
        NCDRF_CHECK(false, "unparsable reducer entry '" + token + "'");
      }
      NCDRF_CHECK(size_mb > 0.0, "reducer shuffle size must be positive");
      rc.reducers.emplace_back(rack, size_mb);
      min_rack = std::min(min_rack, rack);
    }
    raw.push_back(std::move(rc));
  }

  // Published benchmark traces are 1-based; synthetic/test inputs may be
  // 0-based. A rack id of 0 anywhere means the whole file is 0-based.
  const int base = (min_rack == 0) ? 0 : 1;

  TraceBuilder builder(num_racks);
  for (const RawCoflow& rc : raw) {
    builder.begin_coflow(milliseconds(rc.arrival_ms));
    for (const auto& [reducer_rack, total_mb] : rc.reducers) {
      const double per_mapper_mb =
          total_mb / static_cast<double>(rc.mappers.size());
      for (const int mapper_rack : rc.mappers) {
        const int src = mapper_rack - base;
        const int dst = reducer_rack - base;
        NCDRF_CHECK(src >= 0 && src < num_racks,
                    "mapper rack out of range in trace");
        NCDRF_CHECK(dst >= 0 && dst < num_racks,
                    "reducer rack out of range in trace");
        builder.add_flow(src, dst, megabytes(per_mapper_mb));
      }
    }
  }
  return builder.build();
}

Trace parse_benchmark_trace_string(const std::string& text) {
  std::istringstream in(text);
  return parse_benchmark_trace(in);
}

Trace load_benchmark_trace(const std::string& path) {
  std::ifstream in(path);
  NCDRF_CHECK(in.good(), "cannot open trace file: " + path);
  return parse_benchmark_trace(in);
}

std::string serialize_benchmark_trace(const Trace& trace) {
  std::ostringstream os;
  // Full double precision: serialized sizes must round-trip exactly.
  os.precision(17);
  os << trace.num_machines << ' ' << trace.coflows.size() << '\n';
  for (const Coflow& coflow : trace.coflows) {
    // Recover mapper set and per-reducer totals from the flows.
    std::vector<int> mappers;
    std::map<int, double> reducer_bits;
    for (const Flow& f : coflow.flows()) {
      if (std::find(mappers.begin(), mappers.end(), f.src) == mappers.end()) {
        mappers.push_back(f.src);
      }
      reducer_bits[f.dst] += f.size_bits;
    }
    std::sort(mappers.begin(), mappers.end());

    os << coflow.id() << ' '
       << static_cast<long long>(coflow.arrival_time() * 1000.0) << ' '
       << mappers.size();
    for (const int m : mappers) os << ' ' << (m + 1);
    os << ' ' << reducer_bits.size();
    for (const auto& [rack, bits_total] : reducer_bits) {
      os << ' ' << (rack + 1) << ':' << to_megabytes(bits_total);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ncdrf
