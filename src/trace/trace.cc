#include "trace/trace.h"

#include <algorithm>

#include "common/check.h"

namespace ncdrf {

double Trace::total_bits() const {
  double total = 0.0;
  for (const Coflow& c : coflows) total += c.total_bits();
  return total;
}

TraceBuilder::TraceBuilder(int num_machines) : num_machines_(num_machines) {
  NCDRF_CHECK(num_machines >= 1, "trace needs at least one machine");
}

CoflowId TraceBuilder::begin_coflow(double arrival_time_s, double weight,
                                    int tenant) {
  NCDRF_CHECK(arrival_time_s >= 0.0, "arrival time must be non-negative");
  NCDRF_CHECK(weight > 0.0, "coflow weight must be positive");
  const auto id = static_cast<CoflowId>(pending_.size());
  pending_.push_back({id, arrival_time_s, weight, tenant, {}});
  return id;
}

void TraceBuilder::add_flow(MachineId src, MachineId dst, double size_bits) {
  NCDRF_CHECK(!pending_.empty(), "begin_coflow before add_flow");
  NCDRF_CHECK(src >= 0 && src < num_machines_, "flow src out of range");
  NCDRF_CHECK(dst >= 0 && dst < num_machines_, "flow dst out of range");
  NCDRF_CHECK(size_bits > 0.0, "flow size must be positive");
  PendingCoflow& coflow = pending_.back();
  coflow.flows.push_back(
      Flow{next_flow_id_++, coflow.id, src, dst, size_bits});
}

Trace TraceBuilder::build() {
  for (const PendingCoflow& p : pending_) {
    NCDRF_CHECK(!p.flows.empty(), "coflow without flows in trace");
  }
  std::sort(pending_.begin(), pending_.end(),
            [](const PendingCoflow& a, const PendingCoflow& b) {
              if (a.arrival != b.arrival) return a.arrival < b.arrival;
              return a.id < b.id;
            });

  Trace trace;
  trace.num_machines = num_machines_;
  trace.total_flows = next_flow_id_;
  trace.coflows.reserve(pending_.size());
  for (std::size_t k = 0; k < pending_.size(); ++k) {
    // Reassign dense ids in arrival order so coflows[k].id() == k.
    std::vector<Flow> flows = std::move(pending_[k].flows);
    for (Flow& f : flows) f.coflow = static_cast<CoflowId>(k);
    trace.coflows.emplace_back(static_cast<CoflowId>(k),
                               pending_[k].arrival, std::move(flows),
                               pending_[k].weight, pending_[k].tenant);
  }
  pending_.clear();
  next_flow_id_ = 0;
  return trace;
}

}  // namespace ncdrf
