#include "runner/thread_pool.h"

#include "common/check.h"

namespace ncdrf {
namespace {

// Workers stamp their owning pool here, so run() can detect a nested
// dispatch from one of its own workers and execute it inline instead of
// deadlocking on a batch slot the worker itself would have to drain.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  NCDRF_CHECK(num_threads >= 1, "thread pool needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run(int num_tasks, const std::function<void(int)>& task) {
  NCDRF_CHECK(num_tasks >= 0, "task count must be non-negative");
  if (num_tasks == 0) return;

  if (tls_worker_pool == this) {
    // Nested dispatch from this pool's own worker: run the whole batch
    // inline, preserving the contract that every task executes and the
    // first error is rethrown after the batch.
    std::exception_ptr first_error;
    for (int i = 0; i < num_tasks; ++i) {
      try {
        task(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  // A second dispatching thread waits its turn; batches never interleave.
  dispatch_free_.wait(lock, [this] { return task_ == nullptr; });
  task_ = &task;
  next_index_ = 0;
  num_tasks_ = num_tasks;
  remaining_ = num_tasks;
  first_error_ = nullptr;
  work_ready_.notify_all();
  batch_done_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
  const std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  lock.unlock();
  dispatch_free_.notify_one();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  tls_worker_pool = this;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_ready_.wait(lock, [this] {
      return stop_ || (task_ != nullptr && next_index_ < num_tasks_);
    });
    if (stop_) return;
    const int index = next_index_++;
    const std::function<void(int)>* task = task_;
    lock.unlock();
    std::exception_ptr error;
    try {
      (*task)(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !first_error_) first_error_ = error;
    if (--remaining_ == 0) batch_done_.notify_all();
  }
}

}  // namespace ncdrf
