// Fixed-size thread pool for embarrassingly parallel sweeps (no work
// stealing, no task graph). Workers claim task indices from a shared
// atomic-style cursor under a mutex; which worker runs which index is
// nondeterministic, so callers must write results into per-index slots —
// that is what makes sweep aggregation deterministic regardless of thread
// count (see runner/sweep.h).
//
// One batch at a time: run() dispatches indices [0, num_tasks) to the
// workers, blocks until every task finished, and rethrows the first task
// exception (remaining tasks still run to completion so the pool stays
// consistent). run() is safe against both ways nested dispatch can
// happen:
//
//   * a task calling run() on its *own* pool (a sharded allocate() inside
//     a sweep cell that shares the pool) executes the nested batch inline
//     on the worker thread — blocking there would deadlock, since the
//     worker can never drain the batch it is waiting on;
//   * a second *thread* calling run() while a batch is in flight (two
//     sweep cells each driving a sharded scheduler) queues up until the
//     pool is free instead of tripping a check.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ncdrf {

class ThreadPool {
 public:
  // Spawns `num_threads` persistent workers. Requires num_threads >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs task(0) ... task(num_tasks - 1) across the workers and blocks
  // until all have finished. Safe to call from a task running on this
  // pool (executes inline) and from multiple threads (serialized).
  void run(int num_tasks, const std::function<void(int)>& task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  std::condition_variable dispatch_free_;  // serializes outer dispatchers
  const std::function<void(int)>* task_ = nullptr;  // non-null while dispatching
  int next_index_ = 0;
  int num_tasks_ = 0;
  int remaining_ = 0;  // tasks not yet finished in the current batch
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ncdrf
