// Fixed-size thread pool for embarrassingly parallel sweeps (no work
// stealing, no task graph). Workers claim task indices from a shared
// atomic-style cursor under a mutex; which worker runs which index is
// nondeterministic, so callers must write results into per-index slots —
// that is what makes sweep aggregation deterministic regardless of thread
// count (see runner/sweep.h).
//
// One batch at a time: run() dispatches indices [0, num_tasks) to the
// workers, blocks until every task finished, and rethrows the first task
// exception (remaining tasks still run to completion so the pool stays
// consistent). run() itself is not thread-safe — one dispatching thread.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ncdrf {

class ThreadPool {
 public:
  // Spawns `num_threads` persistent workers. Requires num_threads >= 1.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Runs task(0) ... task(num_tasks - 1) across the workers and blocks
  // until all have finished. Tasks must not call run() reentrantly.
  void run(int num_tasks, const std::function<void(int)>& task);

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  const std::function<void(int)>* task_ = nullptr;  // non-null while dispatching
  int next_index_ = 0;
  int num_tasks_ = 0;
  int remaining_ = 0;  // tasks not yet finished in the current batch
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ncdrf
