#include "runner/sweep.h"

#include <chrono>
#include <memory>
#include <utility>

#include "common/check.h"
#include "core/registry.h"
#include "runner/thread_pool.h"

namespace ncdrf {

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec) {
  NCDRF_CHECK(!spec.policies.empty(), "sweep needs at least one policy");
  NCDRF_CHECK(!spec.traces.empty(), "sweep needs at least one trace");
  NCDRF_CHECK(spec.threads >= 1, "sweep needs at least one thread");
  // Fail on unknown policy names before spawning anything.
  for (const std::string& name : spec.policies) make_scheduler(name);

  const std::size_t num_traces = spec.traces.size();
  const int num_cells =
      static_cast<int>(spec.policies.size() * num_traces);

  SweepResult result;
  result.threads = spec.threads;
  result.cells.resize(static_cast<std::size_t>(num_cells));

  const auto sweep_start = std::chrono::steady_clock::now();
  // Each cell builds its own fabric copy and scheduler instance: nothing
  // mutable crosses cell boundaries, so any thread may run any index.
  const auto run_cell = [&](int index) {
    const auto idx = static_cast<std::size_t>(index);
    const std::size_t p = idx / num_traces;
    const std::size_t t = idx % num_traces;
    SweepCellResult& cell = result.cells[idx];
    cell.policy = spec.policies[p];
    cell.trace_label = spec.traces[t].label;

    const Fabric fabric = spec.fabric;
    const std::unique_ptr<Scheduler> scheduler =
        make_scheduler(cell.policy);
    const auto cell_start = std::chrono::steady_clock::now();
    cell.run = simulate(fabric, spec.traces[t].trace, *scheduler, spec.sim);
    cell.wall_seconds = seconds_since(cell_start);
    cell.events_per_second =
        cell.wall_seconds > 0.0
            ? static_cast<double>(cell.run.num_events) / cell.wall_seconds
            : 0.0;
  };

  ThreadPool pool(spec.threads);
  pool.run(num_cells, run_cell);
  result.wall_seconds = seconds_since(sweep_start);
  return result;
}

}  // namespace ncdrf
