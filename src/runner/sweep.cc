#include "runner/sweep.h"

#include <chrono>
#include <fstream>
#include <memory>
#include <utility>

#include "common/check.h"
#include "core/registry.h"
#include "obs/tracer.h"
#include "runner/thread_pool.h"

namespace ncdrf {

namespace {

double seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double>(elapsed).count();
}

}  // namespace

SweepResult run_sweep(const SweepSpec& spec) {
  NCDRF_CHECK(!spec.policies.empty(), "sweep needs at least one policy");
  NCDRF_CHECK(!spec.traces.empty(), "sweep needs at least one trace");
  NCDRF_CHECK(spec.threads >= 1, "sweep needs at least one thread");
  // Fail on unknown policy names before spawning anything.
  for (const std::string& name : spec.policies) make_scheduler(name);

  const std::size_t num_traces = spec.traces.size();
  const int num_cells =
      static_cast<int>(spec.policies.size() * num_traces);

  SweepResult result;
  result.threads = spec.threads;
  result.cells.resize(static_cast<std::size_t>(num_cells));

  const auto sweep_start = std::chrono::steady_clock::now();
  // Each cell builds its own fabric copy and scheduler instance: nothing
  // mutable crosses cell boundaries, so any thread may run any index.
  const auto run_cell = [&](int index) {
    const auto idx = static_cast<std::size_t>(index);
    const std::size_t p = idx / num_traces;
    const std::size_t t = idx % num_traces;
    SweepCellResult& cell = result.cells[idx];
    cell.policy = spec.policies[p];
    cell.trace_label = spec.traces[t].label;

    const Fabric fabric = spec.fabric;
    const std::unique_ptr<Scheduler> scheduler =
        make_scheduler(cell.policy);
    // Per-cell tracing: each cell owns its tracer so parallel cells never
    // interleave events; the caller's own tracer/auditor attachments are
    // not shareable across threads and are detached here.
    SimOptions sim = spec.sim;
    sim.tracer = nullptr;
    sim.metrics = nullptr;
    sim.auditor = nullptr;
    std::unique_ptr<obs::Tracer> cell_tracer;
    if (!spec.trace_dir.empty()) {
      // Sized for a full FB-like replay per cell (~100k events for the
      // chattiest policy); overflow still exports a loadable trace (the
      // exporter prunes closes whose opens were overwritten).
      cell_tracer = std::make_unique<obs::Tracer>(1 << 20);
      sim.tracer = cell_tracer.get();
    }
    const auto cell_start = std::chrono::steady_clock::now();
    cell.run = simulate(fabric, spec.traces[t].trace, *scheduler, sim);
    cell.wall_seconds = seconds_since(cell_start);
    cell.events_per_second =
        cell.wall_seconds > 0.0
            ? static_cast<double>(cell.run.num_events) / cell.wall_seconds
            : 0.0;
    if (const SchedPerf* perf = scheduler->perf_counters()) {
      cell.perf = *perf;
    }
    if (cell_tracer != nullptr) {
      std::ofstream out(spec.trace_dir + "/" + cell.policy + "-" +
                        cell.trace_label + ".json");
      NCDRF_CHECK(out.good(), "cannot open sweep trace file under " +
                                  spec.trace_dir);
      cell_tracer->write_chrome_json(out);
    }
  };

  ThreadPool pool(spec.threads);
  pool.run(num_cells, run_cell);
  result.wall_seconds = seconds_since(sweep_start);
  // Grid-order aggregation keeps the merged counters bit-identical for
  // any thread count.
  for (const SweepCellResult& cell : result.cells) {
    result.perf += cell.perf;
  }
  return result;
}

}  // namespace ncdrf
