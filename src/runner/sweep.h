// Declarative {policy × trace} sweep runner: the parallel counterpart of
// the serial "for each policy: simulate" loops in the figure benches.
//
// A sweep is a grid: every registered policy name in `policies` crossed
// with every trace case in `traces`, all replayed on copies of the same
// fabric. Each cell owns its entire world — a Fabric copy, a scheduler
// built fresh from the registry, and a simulator run — so cells share no
// mutable state and can execute on any thread. Results land in per-cell
// slots indexed by grid position (policy-major, trace-minor), which makes
// the aggregated output *bit-identical* regardless of thread count or
// scheduling order: runner_test.cc pins that property for every policy in
// the registry.
//
// Per-cell wall time and simulated events/sec ride along for the perf
// trajectory (metrics/export.h:write_sweep_json, archived by CI).
#pragma once

#include <string>
#include <vector>

#include "fabric/fabric.h"
#include "obs/perf.h"
#include "sim/sim.h"
#include "trace/trace.h"

namespace ncdrf {

// One trace axis entry: the label names the workload in results/JSON
// (e.g. "seed42"). Traces are shared read-only across cells.
struct SweepCase {
  std::string label;
  Trace trace;
};

struct SweepSpec {
  Fabric fabric{1, 1.0};
  std::vector<std::string> policies;  // registry names (make_scheduler)
  std::vector<SweepCase> traces;
  SimOptions sim;       // applied to every cell
  int threads = 1;      // >= 1; 1 reproduces the serial figure-bench loop

  // When non-empty, every cell runs under its own virtual-clock tracer and
  // writes a Chrome trace-event file to "<trace_dir>/<policy>-<label>.json"
  // (the directory must exist). Cells stay independent: each owns its
  // tracer, so parallel execution never interleaves trace streams. Any
  // tracer already set in `sim` is only used by the caller's own runs.
  std::string trace_dir;
};

// One grid cell's outcome.
struct SweepCellResult {
  std::string policy;
  std::string trace_label;
  RunResult run;
  double wall_seconds = 0.0;       // this cell's simulate() wall time
  double events_per_second = 0.0;  // run.num_events / wall_seconds
  // The cell scheduler's counters (zeroed struct for policies that do not
  // expose Scheduler::perf_counters).
  SchedPerf perf;
};

struct SweepResult {
  // Grid order: cells[p * traces.size() + t] is policies[p] × traces[t].
  std::vector<SweepCellResult> cells;
  double wall_seconds = 0.0;  // whole-sweep wall time
  int threads = 1;
  // Σ cell.perf over the grid, accumulated in grid order after the pool
  // drains — deterministic for any thread count.
  SchedPerf perf;
};

// Runs the full grid. Throws CheckError on an empty grid axis or an
// unknown policy name; exceptions from inside a cell propagate after the
// remaining cells finish.
SweepResult run_sweep(const SweepSpec& spec);

}  // namespace ncdrf
