// Scheduler factory: every policy in the design space by its short name.
// Used by benches, examples and integration tests so experiment code never
// hard-codes concrete scheduler types.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.h"

namespace ncdrf {

// Known names (case-sensitive):
//   "ncdrf"       NC-DRF, Algorithm 1 (stale counts — the paper's
//                 simulated behaviour)
//   "ncdrf-live"  NC-DRF with live flow counts (the adaptive variant the
//                 EC2 prototype implements)
//   "drf", "hug"  clairvoyant isolation-optimal baselines
//   "psp", "psp-live"  FairCloud per-link fairness (stale/live counts)
//   "tcp"         per-flow max-min fairness
//   "persource", "perpair"  FairCloud's other flow-level policies
//   "aalo"        D-CLAS (non-clairvoyant performance-optimal)
//   "varys"       SEBF+MADD (clairvoyant performance-optimal)
//   "fifo"        Orchestra-style FIFO
//   "baraat"      FIFO-LM (decentralized task-aware)
//
// Any kernel-backed name takes an optional "@N" suffix ("drf@4",
// "fifo@8") selecting the sharded execution path with N link shards —
// shorthand for the SchedulerOptions overload below. The ncdrf* policies
// run the incremental core engine and accept only N == 1.
// Throws CheckError on an unknown name.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

// Same factory with explicit scheduler-wide options (shard count). The
// plain overload parses the "@N" suffix and delegates here.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerOptions& options);

// All registered names, in the order the paper's evaluation lists them.
std::vector<std::string> scheduler_names();

}  // namespace ncdrf
