#include "core/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace ncdrf {
namespace {

// Tolerance for double-vector agreement with a fresh rebuild; integer
// state must match exactly. Scaled by magnitude so big clusters (load ~ K)
// and raw capacities (~1e9 bps) are judged relatively.
bool near(double a, double b) {
  return std::abs(a - b) <=
         1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

IncrementalNcDrfState::IncrementalNcDrfState(bool count_finished_flows)
    : count_finished_flows_(count_finished_flows) {}

void IncrementalNcDrfState::reset(const Fabric& fabric) {
  fabric_ = &fabric;
  coflows_.clear();
  const auto links = static_cast<std::size_t>(fabric.num_links());
  load_.assign(links, 0.0);
  usage_weight_.assign(links, 0.0);
  live_link_counts_.assign(links, 0);
}

void IncrementalNcDrfState::apply(const CoflowState& cs, int sign) {
  if (cs.bottleneck <= 0) return;
  for (const LinkId l : cs.touched) {
    const std::size_t i = index(l);
    // Per-link division (not a precomputed w/n̄ factor) keeps the rebuild
    // path bitwise identical to the full-scan reference implementation.
    load_[i] += sign * (cs.weight * cs.count[i] / cs.bottleneck);
    usage_weight_[i] += sign * (cs.weight * cs.live[i] / cs.bottleneck);
    live_link_counts_[i] += sign * cs.live[i];
  }
}

std::size_t IncrementalNcDrfState::add_coflow(const ActiveCoflow& coflow) {
  NCDRF_CHECK(fabric_ != nullptr, "state not bound to a fabric");
  NCDRF_CHECK(coflow.weight > 0.0, "coflow weights must be positive");
  const auto [it, inserted] = coflows_.try_emplace(coflow.id);
  NCDRF_CHECK(inserted, "coflow already tracked");
  CoflowState& cs = it->second;
  cs.weight = coflow.weight;
  const auto links = static_cast<std::size_t>(fabric_->num_links());
  cs.count.assign(links, 0);
  cs.live.assign(links, 0);

  const auto count_flow = [&](const ActiveFlow& f, bool is_live) {
    const std::size_t up = index(fabric_->uplink(f.src));
    const std::size_t dn = index(fabric_->downlink(f.dst));
    if (cs.count[up]++ == 0) cs.touched.push_back(static_cast<LinkId>(up));
    if (cs.count[dn]++ == 0) cs.touched.push_back(static_cast<LinkId>(dn));
    if (is_live) {
      ++cs.live[up];
      ++cs.live[dn];
      ++cs.live_flows;
    }
    ++cs.counted_flows;
  };
  for (const ActiveFlow& f : coflow.flows) count_flow(f, true);
  if (count_finished_flows_) {
    for (const ActiveFlow& f : coflow.finished_flows) count_flow(f, false);
  }

  for (const LinkId l : cs.touched) {
    cs.bottleneck = std::max(cs.bottleneck, cs.count[index(l)]);
  }
  apply(cs, +1);
  return cs.touched.size();
}

std::size_t IncrementalNcDrfState::finish_flow(const ActiveFlow& flow) {
  NCDRF_CHECK(fabric_ != nullptr, "state not bound to a fabric");
  const auto it = coflows_.find(flow.coflow);
  NCDRF_CHECK(it != coflows_.end(), "flow finish for an untracked coflow");
  CoflowState& cs = it->second;
  const std::size_t up = index(fabric_->uplink(flow.src));
  const std::size_t dn = index(fabric_->downlink(flow.dst));
  NCDRF_CHECK(cs.live[up] > 0 && cs.live[dn] > 0 && cs.live_flows > 0,
              "flow finish without a matching live flow");
  const double share = cs.weight / cs.bottleneck;  // bottleneck ≥ 1 here

  --cs.live[up];
  --cs.live[dn];
  --cs.live_flows;
  --live_link_counts_[up];
  --live_link_counts_[dn];
  usage_weight_[up] -= share;
  usage_weight_[dn] -= share;
  std::size_t touched = 2;

  if (!count_finished_flows_) {
    // Live counting: the flow leaves n_k too, and n̄_k may shrink.
    --cs.count[up];
    --cs.count[dn];
    --cs.counted_flows;
    load_[up] -= share;
    load_[dn] -= share;
    if (cs.count[up] + 1 == cs.bottleneck ||
        cs.count[dn] + 1 == cs.bottleneck) {
      int fresh = 0;
      for (const LinkId l : cs.touched) {
        fresh = std::max(fresh, cs.count[index(l)]);
      }
      if (fresh != cs.bottleneck) {
        // Rescale this coflow's contribution from 1/n̄_old to 1/n̄_new on
        // every link it touches (all-zero counts make both terms vanish).
        const double old_inv = 1.0 / cs.bottleneck;
        const double new_inv = fresh > 0 ? 1.0 / fresh : 0.0;
        for (const LinkId l : cs.touched) {
          const std::size_t i = index(l);
          const double rescale = cs.weight * (new_inv - old_inv);
          load_[i] += cs.count[i] * rescale;
          usage_weight_[i] += cs.live[i] * rescale;
        }
        touched += cs.touched.size();
        cs.bottleneck = fresh;
      }
    }
  }
  return touched;
}

std::size_t IncrementalNcDrfState::remove_coflow(CoflowId id) {
  NCDRF_CHECK(fabric_ != nullptr, "state not bound to a fabric");
  const auto it = coflows_.find(id);
  NCDRF_CHECK(it != coflows_.end(), "departure of an untracked coflow");
  const std::size_t touched = it->second.touched.size();
  apply(it->second, -1);
  coflows_.erase(it);
  if (coflows_.empty()) {
    // Flush accumulated rounding residue whenever the fabric drains, so
    // drift cannot build up across scheduling epochs.
    std::fill(load_.begin(), load_.end(), 0.0);
    std::fill(usage_weight_.begin(), usage_weight_.end(), 0.0);
    std::fill(live_link_counts_.begin(), live_link_counts_.end(), 0);
  }
  return touched;
}

void IncrementalNcDrfState::rebuild(const ScheduleInput& input) {
  NCDRF_CHECK(input.fabric != nullptr, "snapshot without a fabric");
  reset(*input.fabric);
  for (const ActiveCoflow& coflow : input.coflows) add_coflow(coflow);
}

bool IncrementalNcDrfState::matches(const ScheduleInput& input) const {
  if (fabric_ != input.fabric) return false;
  if (coflows_.size() != input.coflows.size()) return false;
  for (const ActiveCoflow& coflow : input.coflows) {
    const auto it = coflows_.find(coflow.id);
    if (it == coflows_.end()) return false;
    const CoflowState& cs = it->second;
    const int counted =
        static_cast<int>(coflow.flows.size()) +
        (count_finished_flows_
             ? static_cast<int>(coflow.finished_flows.size())
             : 0);
    if (cs.weight != coflow.weight ||
        cs.live_flows != static_cast<int>(coflow.flows.size()) ||
        cs.counted_flows != counted) {
      return false;
    }
  }
  return true;
}

double IncrementalNcDrfState::p_star() const {
  LinkId bottleneck = -1;
  return p_star(bottleneck);
}

double IncrementalNcDrfState::p_star(LinkId& bottleneck_link) const {
  NCDRF_CHECK(fabric_ != nullptr, "state not bound to a fabric");
  double p_star = std::numeric_limits<double>::infinity();
  bottleneck_link = -1;
  for (LinkId i = 0; i < fabric_->num_links(); ++i) {
    const std::size_t idx = index(i);
    if (load_[idx] > 0.0) {
      const double bound = fabric_->capacity(i) / load_[idx];
      if (bound < p_star) {
        p_star = bound;
        bottleneck_link = i;
      }
    }
  }
  return std::isfinite(p_star) ? p_star : 0.0;
}

void IncrementalNcDrfState::residual_capacity(double p_star,
                                              std::vector<double>& out) const {
  NCDRF_CHECK(fabric_ != nullptr, "state not bound to a fabric");
  out.resize(usage_weight_.size());
  for (LinkId i = 0; i < fabric_->num_links(); ++i) {
    const std::size_t idx = index(i);
    out[idx] = fabric_->capacity(i) - p_star * usage_weight_[idx];
  }
}

void IncrementalNcDrfState::check_consistent(const ScheduleInput& input) const {
  IncrementalNcDrfState fresh(count_finished_flows_);
  fresh.rebuild(input);
  NCDRF_CHECK(fresh.coflows_.size() == coflows_.size(),
              "incremental state tracks a different coflow set");
  for (const auto& [id, want] : fresh.coflows_) {
    const auto it = coflows_.find(id);
    NCDRF_CHECK(it != coflows_.end(),
                "incremental state is missing a coflow");
    const CoflowState& got = it->second;
    NCDRF_CHECK(got.weight == want.weight &&
                    got.bottleneck == want.bottleneck &&
                    got.live_flows == want.live_flows &&
                    got.counted_flows == want.counted_flows &&
                    got.count == want.count && got.live == want.live,
                "incremental per-coflow counts diverged from recompute");
  }
  NCDRF_CHECK(live_link_counts_ == fresh.live_link_counts_,
              "incremental live link counts diverged from recompute");
  for (std::size_t i = 0; i < load_.size(); ++i) {
    NCDRF_CHECK(near(load_[i], fresh.load_[i]),
                "incremental load vector diverged from recompute");
    NCDRF_CHECK(near(usage_weight_[i], fresh.usage_weight_[i]),
                "incremental usage weights diverged from recompute");
  }
}

}  // namespace ncdrf
