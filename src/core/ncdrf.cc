#include <cmath>
#include "core/ncdrf.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/check.h"
#include "sched/backfill.h"

namespace ncdrf {
namespace {

// Flow counts per link for one coflow (Algorithm 1 lines 4-5).
std::vector<int> coflow_link_counts(const Fabric& fabric,
                                    const ActiveCoflow& coflow,
                                    bool count_finished) {
  std::vector<int> counts(static_cast<std::size_t>(fabric.num_links()), 0);
  for (const ActiveFlow& f : coflow.flows) {
    counts[static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
    counts[static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
  }
  if (count_finished) {
    for (const ActiveFlow& f : coflow.finished_flows) {
      counts[static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      counts[static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
    }
  }
  return counts;
}

}  // namespace

NcDrfScheduler::NcDrfScheduler(NcDrfOptions options) : options_(options) {
  NCDRF_CHECK(options_.backfill_rounds >= 0,
              "backfill rounds must be non-negative");
}

double NcDrfScheduler::flow_count_progress(const ScheduleInput& input,
                                           bool count_finished_flows) {
  const Fabric& fabric = *input.fabric;
  // Σ_k ĉ_k^i per link (Algorithm 1 lines 3-8), then
  // P̂* = min_i C_i / Σ_k ĉ_k^i (line 9; Eq. 5 with unit capacities).
  std::vector<double> load(static_cast<std::size_t>(fabric.num_links()), 0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    NCDRF_CHECK(coflow.weight > 0.0, "coflow weights must be positive");
    const std::vector<int> counts =
        coflow_link_counts(fabric, coflow, count_finished_flows);
    const int bottleneck = *std::max_element(counts.begin(), counts.end());
    if (bottleneck == 0) continue;
    for (std::size_t i = 0; i < load.size(); ++i) {
      load[i] += coflow.weight * counts[i] / bottleneck;
    }
  }
  double p_star = std::numeric_limits<double>::infinity();
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (load[idx] > 0.0) {
      p_star = std::min(p_star, fabric.capacity(i) / load[idx]);
    }
  }
  return std::isfinite(p_star) ? p_star : 0.0;
}

Allocation NcDrfScheduler::allocate(const ScheduleInput& input) {
  // Non-clairvoyance by construction: this function must compile and run
  // without ever touching input.clairvoyant.
  const Fabric& fabric = *input.fabric;
  Allocation alloc;

  const double p_star =
      flow_count_progress(input, options_.count_finished_flows);
  if (p_star <= 0.0) return alloc;

  // Algorithm 1 lines 10-15: every flow of coflow k runs at
  // r_k = w_k · P̂*/n̄_k, so the coflow's aggregate on link i is
  // w_k · ĉ_k^i · P̂* (weights default to 1, recovering the paper's form).
  for (const ActiveCoflow& coflow : input.coflows) {
    if (coflow.flows.empty()) continue;
    const std::vector<int> counts =
        coflow_link_counts(fabric, coflow, options_.count_finished_flows);
    const int bottleneck = *std::max_element(counts.begin(), counts.end());
    const double r_k = coflow.weight * p_star / bottleneck;
    for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, r_k);
  }

  if (options_.work_conserving) {
    even_backfill(input, alloc, options_.backfill_rounds);
  }
  return alloc;
}

}  // namespace ncdrf
