#include "core/ncdrf.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "obs/tracer.h"
#include "sched/backfill.h"

namespace ncdrf {
namespace {

// Flow counts per link for one coflow (Algorithm 1 lines 4-5) — the
// from-scratch reference used by flow_count_progress.
std::vector<int> coflow_link_counts(const Fabric& fabric,
                                    const ActiveCoflow& coflow,
                                    bool count_finished) {
  std::vector<int> counts(static_cast<std::size_t>(fabric.num_links()), 0);
  for (const ActiveFlow& f : coflow.flows) {
    counts[static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
    counts[static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
  }
  if (count_finished) {
    for (const ActiveFlow& f : coflow.finished_flows) {
      counts[static_cast<std::size_t>(fabric.uplink(f.src))] += 1;
      counts[static_cast<std::size_t>(fabric.downlink(f.dst))] += 1;
    }
  }
  return counts;
}

}  // namespace

NcDrfScheduler::NcDrfScheduler(NcDrfOptions options)
    : options_(options), state_(options.count_finished_flows) {
  NCDRF_CHECK(options_.backfill_rounds >= 0,
              "backfill rounds must be non-negative");
}

double NcDrfScheduler::flow_count_progress(const ScheduleInput& input,
                                           bool count_finished_flows) {
  const Fabric& fabric = *input.fabric;
  // Σ_k ĉ_k^i per link (Algorithm 1 lines 3-8), then
  // P̂* = min_i C_i / Σ_k ĉ_k^i (line 9; Eq. 5 with unit capacities).
  std::vector<double> load(static_cast<std::size_t>(fabric.num_links()), 0.0);
  for (const ActiveCoflow& coflow : input.coflows) {
    NCDRF_CHECK(coflow.weight > 0.0, "coflow weights must be positive");
    const std::vector<int> counts =
        coflow_link_counts(fabric, coflow, count_finished_flows);
    const int bottleneck = *std::max_element(counts.begin(), counts.end());
    if (bottleneck == 0) continue;
    for (std::size_t i = 0; i < load.size(); ++i) {
      load[i] += coflow.weight * counts[i] / bottleneck;
    }
  }
  double p_star = std::numeric_limits<double>::infinity();
  for (LinkId i = 0; i < fabric.num_links(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (load[idx] > 0.0) {
      p_star = std::min(p_star, fabric.capacity(i) / load[idx]);
    }
  }
  return std::isfinite(p_star) ? p_star : 0.0;
}

void NcDrfScheduler::on_reset(const Fabric& fabric) {
  state_.reset(fabric);
  event_driven_ = true;
}

void NcDrfScheduler::set_observers(obs::Tracer* tracer,
                                   obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  // Allocate latencies span sub-microsecond (incremental) to milliseconds
  // (cold rebuilds at scale); the geometry keeps that whole range in ~160
  // buckets at the default 10^(1/10) growth.
  alloc_latency_ =
      metrics != nullptr
          ? &metrics->histogram("sched.allocate_latency_s", 1e-8, 10.0,
                                1.2589254117941673)
          : nullptr;
}

void NcDrfScheduler::on_coflow_arrival(const ActiveCoflow& coflow) {
  if (!options_.incremental || !event_driven_) return;
  perf_.links_touched +=
      static_cast<long long>(state_.add_coflow(coflow));
  ++perf_.arrival_events;
}

void NcDrfScheduler::on_flow_finish(const ActiveFlow& flow) {
  if (!options_.incremental || !event_driven_) return;
  perf_.links_touched += static_cast<long long>(state_.finish_flow(flow));
  ++perf_.flow_finish_events;
}

void NcDrfScheduler::on_coflow_departure(CoflowId id) {
  if (!options_.incremental || !event_driven_) return;
  perf_.links_touched += static_cast<long long>(state_.remove_coflow(id));
  ++perf_.departure_events;
}

Allocation NcDrfScheduler::allocate(const ScheduleInput& input) {
  // Non-clairvoyance by construction: this function must compile and run
  // without ever touching input.clairvoyant.
  const AllocateTimer timer(perf_, alloc_latency_);
  ++perf_.allocate_calls;
  Allocation alloc;

  // Serve from the event-maintained state when it provably covers the
  // snapshot; otherwise adopt the snapshot with a full O(K·(F+L)) rebuild
  // (single pass — counts and bottlenecks are computed once and reused for
  // both P̂* and the per-coflow rates).
  const bool synced = options_.incremental && event_driven_ &&
                      state_.matches(input);
  NCDRF_TRACE_SPAN(tracer_, obs::EventKind::kNcDrfAlloc, input.now,
                   synced ? 1 : 0,
                   static_cast<std::int64_t>(input.coflows.size()));
  if (synced) {
    ++perf_.incremental_allocs;
    if (options_.verify_incremental) {
      state_.check_consistent(input);
      ++perf_.consistency_checks;
    }
  } else {
    NCDRF_TRACE_SPAN(tracer_, obs::EventKind::kCorrelationBuild, input.now,
                     static_cast<std::int64_t>(input.coflows.size()));
    state_.rebuild(input);
    ++perf_.full_rebuilds;
  }

#if NCDRF_TRACE_ENABLED
  if (tracer_ != nullptr) {
    tracer_->begin(obs::EventKind::kPStarSearch, input.now);
  }
#endif
  LinkId bottleneck_link = -1;
  const double p_star = state_.p_star(bottleneck_link);
#if NCDRF_TRACE_ENABLED
  if (tracer_ != nullptr) {
    tracer_->end(obs::EventKind::kPStarSearch, input.now, bottleneck_link,
                 0, p_star);
  }
#endif
  if (p_star <= 0.0) return alloc;

  // Backfilling round one needs only O(L) state available before any flow
  // is touched: residual_i = C_i − P̂*·Σ_k (w_k/n̄_k)·live_k^i (from the
  // tracked vectors, no usage rescan), divided evenly among each link's
  // live flows. Converting residual_ into the per-link share vector here
  // lets the base DRF rate and the first backfill round land in a single
  // O(flows) pass below — set_rate(r_k + w) is bitwise identical to
  // set_rate(r_k) followed by add_rate(w).
  const Fabric& fabric = *input.fabric;
  bool any_spare = false;
  const bool backfilling =
      options_.work_conserving && options_.backfill_rounds > 0;
  // The fused first round rides the base-rate pass below, so its flow loop
  // is not separable; the timer covers the residual prep and the extra
  // rounds, which is where the backfill-specific work lives.
  std::chrono::steady_clock::time_point backfill_start;
  if (backfilling) {
#if NCDRF_TRACE_ENABLED
    if (tracer_ != nullptr) {
      tracer_->begin(obs::EventKind::kBackfill, input.now);
    }
#endif
    backfill_start = std::chrono::steady_clock::now();
    state_.residual_capacity(p_star, residual_);
    const std::vector<int>& counts = state_.live_link_counts();
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const double unused = std::max(residual_[idx], 0.0);
      if (counts[idx] > 0 && unused > 0.0) {
        residual_[idx] = unused / counts[idx];
        any_spare = true;
      } else {
        residual_[idx] = 0.0;
      }
    }
  }

  // Algorithm 1 lines 10-15: every flow of coflow k runs at
  // r_k = w_k · P̂*/n̄_k, so the coflow's aggregate on link i is
  // w_k · ĉ_k^i · P̂* (weights default to 1, recovering the paper's form).
  alloc.reserve(static_cast<std::size_t>(live_flows_hint(input)));
  for (const ActiveCoflow& coflow : input.coflows) {
    if (coflow.flows.empty()) continue;
    const double r_k = state_.rate_bps(coflow.id, p_star);
    if (any_spare) {
      for (const ActiveFlow& f : coflow.flows) {
        const double w = std::min(
            residual_[static_cast<std::size_t>(fabric.uplink(f.src))],
            residual_[static_cast<std::size_t>(fabric.downlink(f.dst))]);
        alloc.set_rate(f.id, r_k + w);
      }
    } else {
      for (const ActiveFlow& f : coflow.flows) alloc.set_rate(f.id, r_k);
    }
  }

  // Rounds beyond the first work from actual usage, exactly as
  // even_backfill_cached's later rounds do (ablation configs only).
  int rounds_done = any_spare ? 1 : 0;
  if (any_spare && options_.backfill_rounds > 1) {
    link_usage(input, alloc, residual_);
    for (LinkId i = 0; i < fabric.num_links(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      residual_[idx] = fabric.capacity(i) - residual_[idx];
    }
    rounds_done +=
        even_backfill_cached(input, alloc, options_.backfill_rounds - 1,
                             state_.live_link_counts(), residual_);
  }
  if (backfilling) {
    perf_.backfill_rounds += rounds_done;
    perf_.backfill_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      backfill_start)
            .count();
#if NCDRF_TRACE_ENABLED
    if (tracer_ != nullptr) {
      tracer_->end(obs::EventKind::kBackfill, input.now, rounds_done);
    }
#endif
  }
  return alloc;
}

}  // namespace ncdrf
