#include "core/registry.h"

#include "common/check.h"
#include "core/ncdrf.h"
#include "sched/aalo.h"
#include "sched/baraat.h"
#include "sched/drf.h"
#include "sched/endpoint_fair.h"
#include "sched/fifo.h"
#include "sched/hug.h"
#include "sched/karma.h"
#include "sched/perflow.h"
#include "sched/psp.h"
#include "sched/varys.h"

namespace ncdrf {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  const std::size_t at = name.rfind('@');
  if (at != std::string::npos) {
    const std::string suffix = name.substr(at + 1);
    NCDRF_CHECK(!suffix.empty() &&
                    suffix.find_first_not_of("0123456789") ==
                        std::string::npos,
                "malformed shard suffix in scheduler name: " + name);
    SchedulerOptions options;
    options.shards = std::stoi(suffix);
    NCDRF_CHECK(options.shards >= 1,
                "shard count must be positive in: " + name);
    return make_scheduler(name.substr(0, at), options);
  }
  return make_scheduler(name, SchedulerOptions{});
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const SchedulerOptions& options) {
  const auto serial_only = [&](const char* policy) {
    NCDRF_CHECK(options.shards <= 1,
                std::string(policy) +
                    " runs the incremental core engine and has no sharded "
                    "path; use shards == 1");
  };
  if (name == "ncdrf") {
    serial_only("ncdrf");
    return std::make_unique<NcDrfScheduler>();
  }
  if (name == "ncdrf-live") {
    serial_only("ncdrf-live");
    return std::make_unique<NcDrfScheduler>(
        NcDrfOptions{.count_finished_flows = false});
  }
  if (name == "ncdrf-scratch") {
    // Incremental engine pinned off: every allocate() rescans the
    // snapshot. Same results as "ncdrf" (within fp rounding); kept for
    // A/B perf measurement and as a cross-check in the property suite.
    serial_only("ncdrf-scratch");
    return std::make_unique<NcDrfScheduler>(
        NcDrfOptions{.incremental = false});
  }
  if (name == "psp-live") {
    return std::make_unique<PspScheduler>(
        PspOptions{.count_finished_flows = false}, options);
  }
  if (name == "drf") return std::make_unique<DrfScheduler>(DrfOptions{}, options);
  if (name == "hug") return std::make_unique<HugScheduler>(HugOptions{}, options);
  if (name == "psp") return std::make_unique<PspScheduler>(PspOptions{}, options);
  if (name == "tcp") return std::make_unique<PerFlowScheduler>(options);
  if (name == "aalo") {
    return std::make_unique<AaloScheduler>(AaloOptions{}, options);
  }
  if (name == "varys") {
    return std::make_unique<VarysScheduler>(VarysOptions{}, options);
  }
  if (name == "fifo") {
    return std::make_unique<FifoScheduler>(FifoOptions{}, options);
  }
  if (name == "baraat") {
    return std::make_unique<BaraatScheduler>(BaraatOptions{}, options);
  }
  if (name == "karma") {
    serial_only("karma");
    return std::make_unique<KarmaScheduler>();
  }
  if (name == "persource") {
    return std::make_unique<EndpointFairScheduler>(FairnessEntity::kSource,
                                                   options);
  }
  if (name == "perpair") {
    return std::make_unique<EndpointFairScheduler>(
        FairnessEntity::kSourceDestinationPair, options);
  }
  NCDRF_CHECK(false, "unknown scheduler name: " + name);
  return nullptr;
}

std::vector<std::string> scheduler_names() {
  return {"tcp",   "persource",  "perpair",       "psp",   "psp-live",
          "ncdrf", "ncdrf-live", "ncdrf-scratch", "drf",   "hug",
          "aalo",  "varys",      "baraat",        "fifo",  "karma"};
}

}  // namespace ncdrf
