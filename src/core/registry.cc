#include "core/registry.h"

#include "common/check.h"
#include "core/ncdrf.h"
#include "sched/aalo.h"
#include "sched/baraat.h"
#include "sched/drf.h"
#include "sched/endpoint_fair.h"
#include "sched/fifo.h"
#include "sched/hug.h"
#include "sched/perflow.h"
#include "sched/psp.h"
#include "sched/varys.h"

namespace ncdrf {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "ncdrf") return std::make_unique<NcDrfScheduler>();
  if (name == "ncdrf-live") {
    return std::make_unique<NcDrfScheduler>(
        NcDrfOptions{.count_finished_flows = false});
  }
  if (name == "ncdrf-scratch") {
    // Incremental engine pinned off: every allocate() rescans the
    // snapshot. Same results as "ncdrf" (within fp rounding); kept for
    // A/B perf measurement and as a cross-check in the property suite.
    return std::make_unique<NcDrfScheduler>(
        NcDrfOptions{.incremental = false});
  }
  if (name == "psp-live") {
    return std::make_unique<PspScheduler>(
        PspOptions{.count_finished_flows = false});
  }
  if (name == "drf") return std::make_unique<DrfScheduler>();
  if (name == "hug") return std::make_unique<HugScheduler>();
  if (name == "psp") return std::make_unique<PspScheduler>();
  if (name == "tcp") return std::make_unique<PerFlowScheduler>();
  if (name == "aalo") return std::make_unique<AaloScheduler>();
  if (name == "varys") return std::make_unique<VarysScheduler>();
  if (name == "fifo") return std::make_unique<FifoScheduler>();
  if (name == "baraat") return std::make_unique<BaraatScheduler>();
  if (name == "persource") {
    return std::make_unique<EndpointFairScheduler>(FairnessEntity::kSource);
  }
  if (name == "perpair") {
    return std::make_unique<EndpointFairScheduler>(
        FairnessEntity::kSourceDestinationPair);
  }
  NCDRF_CHECK(false, "unknown scheduler name: " + name);
  return nullptr;
}

std::vector<std::string> scheduler_names() {
  return {"tcp",   "persource",  "perpair",       "psp",  "psp-live",
          "ncdrf", "ncdrf-live", "ncdrf-scratch", "drf",  "hug",
          "aalo",  "varys",      "baraat",        "fifo"};
}

}  // namespace ncdrf
