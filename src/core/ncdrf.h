// NC-DRF — Non-Clairvoyant Dominant Resource Fairness.
//
// The paper's contribution (Sec. IV, Algorithm 1): a coflow scheduler that
// provides long-term isolation guarantees *without* knowing coflow sizes.
//
// Key idea: the per-link *flow count* n_k^i — observable a priori through
// the scheduler API (Aalo) or coflow identification (CODA) — is used in
// place of the unknown demand d_k^i. Because load-balanced data-parallel
// applications keep flow-size disparity within a coflow small, the
// flow-count correlation vector ĉ_k^i = n_k^i / n̄_k tracks the true
// demand correlation, and DRF can be run on it:
//
//   P̂* = 1 / max_i Σ_k ĉ_k^i            (Eq. 5; per-unit capacity)
//   every flow of coflow k gets rate r_k = P̂* / n̄_k
//
// so coflow k's aggregate on link i is ĉ_k^i · P̂* — proportional to its
// flow count, hence never mismatched across its coupled up/downlinks (the
// waste PS-P suffers in Fig. 4a cannot occur). A backfilling stage then
// redistributes any unused bandwidth evenly across active flows, capped by
// the coupled links (work conservation, Sec. IV-B).
//
// Guarantee (Theorem 1): offline, under the paper's assumptions, every
// coflow's CCT under NC-DRF is at most e_max times its CCT under
// clairvoyant DRF, where e_max is the largest intra-coflow demand
// disparity (Eq. 4).
//
// Online operation (NC-DRFOnline): the driver re-invokes allocate() on
// every coflow arrival/departure — and, in this implementation, on every
// flow completion, since finished flows leave the active snapshot and
// change the observable flow counts. With the default incremental engine
// the scheduler additionally asks event-driven drivers for delta
// notifications (Scheduler::wants_events) and serves each allocate() from
// persistent per-coflow state (IncrementalNcDrfState) instead of rescanning
// the snapshot — O(links + flows) per event instead of O(K·(F+L)).
#pragma once

#include "core/incremental.h"
#include "obs/perf.h"
#include "sched/scheduler.h"

namespace ncdrf {

// Default for NcDrfOptions::verify_incremental: cross-check the
// incremental state against a full recompute on every event-driven
// allocate in Debug builds; stay out of the hot path in optimized ones.
#ifdef NDEBUG
inline constexpr bool kVerifyIncrementalDefault = false;
#else
inline constexpr bool kVerifyIncrementalDefault = true;
#endif

struct NcDrfOptions {
  // Backfilling ("Retaining Work Conservation", Sec. IV-B). One round is
  // what the paper specifies; extra rounds are an ablation knob.
  bool work_conserving = true;
  int backfill_rounds = 1;

  // How n_k^i is counted in the online procedure.
  //
  // Default (true, "stale", Algorithm 1 read literally): NC-DRFOnline
  // reallocates on coflow arrival/departure, so a flow keeps counting
  // toward n_k^i until its whole coflow departs; the share reserved for
  // finished flows is recycled only by backfilling. This is the behaviour
  // that reproduces the paper's simulated results (the +68%-vs-DRF and
  // 1.7x-vs-PS-P headlines).
  //
  // When false ("live"), counts shrink as individual flows finish — the
  // adaptive variant the paper's EC2 prototype effectively implements
  // (slaves report completions, the master reallocates). It tracks
  // clairvoyant DRF almost exactly, answering the paper's future-work
  // question about shrinking the isolation ratio; available from the
  // registry as "ncdrf-live". bench_ablation_counting quantifies the gap.
  bool count_finished_flows = true;

  // Event-driven incremental engine. When true the scheduler accepts delta
  // notifications (on_coflow_arrival / on_flow_finish /
  // on_coflow_departure) and keeps the per-link count vectors, bottlenecks
  // and the global load vector as persistent state, updated in O(links
  // touched) per event. allocate() falls back to a full snapshot rebuild
  // whenever the tracked state does not cover the input (e.g. drivers that
  // never deliver events), so this flag changes cost, never results beyond
  // last-ulp rounding. "ncdrf-scratch" in the registry pins it off for
  // A/B measurement.
  bool incremental = true;

  // Cross-check every incremental allocate() against a from-scratch
  // recompute (integers exactly, doubles within 1e-9 relative) via
  // NCDRF_CHECK. Defaults on in Debug builds, off in optimized builds.
  bool verify_incremental = kVerifyIncrementalDefault;
};

class NcDrfScheduler : public Scheduler {
 public:
  explicit NcDrfScheduler(NcDrfOptions options = {});

  std::string name() const override { return "NC-DRF"; }

  // The whole point: NC-DRF never sees flow or coflow sizes.
  bool clairvoyant() const override { return false; }

  // Algorithm 1's allocBandwidth + backfilling for one snapshot. The
  // online procedure is this function re-run at every arrival/departure;
  // with delta notifications it reuses the incrementally maintained state,
  // otherwise it rebuilds from the snapshot (the from-scratch path).
  Allocation allocate(const ScheduleInput& input) override;

  // Event-driven interface: deltas keep IncrementalNcDrfState in sync.
  bool wants_events() const override { return options_.incremental; }
  void on_reset(const Fabric& fabric) override;
  void on_coflow_arrival(const ActiveCoflow& coflow) override;
  void on_flow_finish(const ActiveFlow& flow) override;
  void on_coflow_departure(CoflowId id) override;

  // P̂* (Eq. 5) for a snapshot, generalized to per-link capacities:
  // P̂* = min_i C_i / Σ_k ĉ_k^i. The from-scratch reference implementation,
  // exposed for tests and benches.
  static double flow_count_progress(const ScheduleInput& input,
                                    bool count_finished_flows = true);

  // Perf counters accumulated since construction; callers may reset().
  const SchedPerf& perf() const { return perf_; }
  SchedPerf& perf() { return perf_; }
  const SchedPerf* perf_counters() const override { return &perf_; }

  // Observability: allocate() emits nested spans (ncdrf_alloc →
  // correlation_build / p_star_search / backfill) to `tracer` and feeds
  // the allocate-latency histogram in `metrics`. Either may be null.
  void set_observers(obs::Tracer* tracer,
                     obs::MetricsRegistry* metrics) override;

 private:
  NcDrfOptions options_;
  IncrementalNcDrfState state_;
  // True once a driver committed to delta delivery (on_reset); until then
  // every allocate() rebuilds, preserving pre-incremental behaviour.
  bool event_driven_ = false;
  std::vector<double> residual_;  // scratch for the backfilling budget
  SchedPerf perf_;
  obs::Tracer* tracer_ = nullptr;
  obs::Histogram* alloc_latency_ = nullptr;
};

}  // namespace ncdrf
