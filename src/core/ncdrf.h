// NC-DRF — Non-Clairvoyant Dominant Resource Fairness.
//
// The paper's contribution (Sec. IV, Algorithm 1): a coflow scheduler that
// provides long-term isolation guarantees *without* knowing coflow sizes.
//
// Key idea: the per-link *flow count* n_k^i — observable a priori through
// the scheduler API (Aalo) or coflow identification (CODA) — is used in
// place of the unknown demand d_k^i. Because load-balanced data-parallel
// applications keep flow-size disparity within a coflow small, the
// flow-count correlation vector ĉ_k^i = n_k^i / n̄_k tracks the true
// demand correlation, and DRF can be run on it:
//
//   P̂* = 1 / max_i Σ_k ĉ_k^i            (Eq. 5; per-unit capacity)
//   every flow of coflow k gets rate r_k = P̂* / n̄_k
//
// so coflow k's aggregate on link i is ĉ_k^i · P̂* — proportional to its
// flow count, hence never mismatched across its coupled up/downlinks (the
// waste PS-P suffers in Fig. 4a cannot occur). A backfilling stage then
// redistributes any unused bandwidth evenly across active flows, capped by
// the coupled links (work conservation, Sec. IV-B).
//
// Guarantee (Theorem 1): offline, under the paper's assumptions, every
// coflow's CCT under NC-DRF is at most e_max times its CCT under
// clairvoyant DRF, where e_max is the largest intra-coflow demand
// disparity (Eq. 4).
//
// Online operation (NC-DRFOnline): the driver re-invokes allocate() on
// every coflow arrival/departure — and, in this implementation, on every
// flow completion, since finished flows leave the active snapshot and
// change the observable flow counts.
#pragma once

#include "sched/scheduler.h"

namespace ncdrf {

struct NcDrfOptions {
  // Backfilling ("Retaining Work Conservation", Sec. IV-B). One round is
  // what the paper specifies; extra rounds are an ablation knob.
  bool work_conserving = true;
  int backfill_rounds = 1;

  // How n_k^i is counted in the online procedure.
  //
  // Default (true, "stale", Algorithm 1 read literally): NC-DRFOnline
  // reallocates on coflow arrival/departure, so a flow keeps counting
  // toward n_k^i until its whole coflow departs; the share reserved for
  // finished flows is recycled only by backfilling. This is the behaviour
  // that reproduces the paper's simulated results (the +68%-vs-DRF and
  // 1.7x-vs-PS-P headlines).
  //
  // When false ("live"), counts shrink as individual flows finish — the
  // adaptive variant the paper's EC2 prototype effectively implements
  // (slaves report completions, the master reallocates). It tracks
  // clairvoyant DRF almost exactly, answering the paper's future-work
  // question about shrinking the isolation ratio; available from the
  // registry as "ncdrf-live". bench_ablation_counting quantifies the gap.
  bool count_finished_flows = true;
};

class NcDrfScheduler : public Scheduler {
 public:
  explicit NcDrfScheduler(NcDrfOptions options = {});

  std::string name() const override { return "NC-DRF"; }

  // The whole point: NC-DRF never sees flow or coflow sizes.
  bool clairvoyant() const override { return false; }

  // Algorithm 1's allocBandwidth + backfilling for one snapshot. The
  // online procedure is this function re-run at every arrival/departure.
  Allocation allocate(const ScheduleInput& input) override;

  // P̂* (Eq. 5) for a snapshot, generalized to per-link capacities:
  // P̂* = min_i C_i / Σ_k ĉ_k^i. Exposed for tests and benches.
  static double flow_count_progress(const ScheduleInput& input,
                                    bool count_finished_flows = true);

 private:
  NcDrfOptions options_;
};

}  // namespace ncdrf
