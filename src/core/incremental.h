// Incremental allocation state for NC-DRF (the event-driven engine behind
// NcDrfScheduler).
//
// The online procedure reallocates on every coflow arrival, departure and
// flow completion. Rebuilding every coflow's per-link flow-count vector
// from the snapshot makes that O(K·(F+L)) per event — the cost that
// dominates trace replay at scale. This class instead keeps the quantities
// Algorithm 1 needs as persistent state:
//
//   * per coflow k: the per-link count vector n_k (and the live-flow
//     vector, which excludes finished flows), its bottleneck n̄_k, and the
//     list of links the coflow touches;
//   * globally: the DRF load vector  load_i = Σ_k w_k·n_k^i/n̄_k  (the
//     denominator of Eq. 5), the usage-weight vector
//     Σ_k (w_k/n̄_k)·live_k^i (which turns into post-DRF link usage when
//     multiplied by P̂*), and per-link live-flow totals (the backfilling
//     denominator).
//
// Delta notifications update all of it in O(links touched by the event):
// O(1) for a flow finish (plus an O(links of that coflow) rescale in live
// counting mode when the coflow's bottleneck shrinks), O(flows of the
// coflow) for arrivals and departures. rebuild() is the O(K·(F+L))
// from-scratch reference path, kept both as the fallback for drivers that
// do not deliver events and as the oracle for check_consistent().
//
// Counts and bottlenecks are integers and therefore exact; the two double
// vectors accumulate deltas and may drift from a fresh rebuild by a few
// ulps per event, which is why consistency is defined as agreement within
// 1e-9 (relative) rather than bitwise.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "sched/scheduler.h"

namespace ncdrf {

class IncrementalNcDrfState {
 public:
  // `count_finished_flows` mirrors NcDrfOptions: when true (Algorithm 1
  // read literally), finished flows keep counting toward n_k until their
  // coflow departs; when false, counts shrink as flows finish.
  explicit IncrementalNcDrfState(bool count_finished_flows);

  // Forgets all tracked coflows and binds the state to `fabric`. Hook
  // deliveries and snapshots must use this fabric until the next reset.
  void reset(const Fabric& fabric);

  // Delta updates. Each returns the number of per-link state entries it
  // wrote — the "links touched" the perf layer reports.
  std::size_t add_coflow(const ActiveCoflow& coflow);
  std::size_t finish_flow(const ActiveFlow& flow);
  std::size_t remove_coflow(CoflowId id);

  // Full O(K·(F+L)) rebuild from a snapshot: the from-scratch path, also
  // used to adopt snapshots from drivers that never deliver events.
  void rebuild(const ScheduleInput& input);

  // Cheap structural check (O(K) hash lookups) that the tracked state
  // covers `input`: same fabric, same coflow ids/weights, same live and
  // counted flow cardinalities. allocate() trusts the state only when this
  // passes, so stale state degrades to a rebuild, never to wrong rates.
  bool matches(const ScheduleInput& input) const;

  // P̂* = min_i C_i / load_i over loaded links (Eq. 5 generalized to
  // per-link capacities); 0 when nothing is loaded. O(L). The overload
  // also reports the arg-min link (the fabric-wide bottleneck the trace
  // layer tags P̂*-search spans with); -1 when nothing is loaded.
  double p_star() const;
  double p_star(LinkId& bottleneck_link) const;

  // Flow rate for coflow `id` given P̂*: w_k·P̂*/n̄_k (Algorithm 1 lines
  // 10-15); 0 for untracked coflows or an all-zero count vector. Inline:
  // allocate() calls this once per active coflow per event.
  double rate_bps(CoflowId id, double p_star) const {
    const auto it = coflows_.find(id);
    if (it == coflows_.end() || it->second.bottleneck <= 0) return 0.0;
    return it->second.weight * p_star / it->second.bottleneck;
  }

  // Σ_k w_k·n_k^i/n̄_k per link — the DRF load vector behind p_star().
  const std::vector<double>& load() const { return load_; }

  // Per-link live (unfinished) flow totals — backfilling's Σ_k n_k^i.
  const std::vector<int>& live_link_counts() const {
    return live_link_counts_;
  }

  // Writes C_i − P̂*·Σ_k (w_k/n̄_k)·live_k^i into `out`: the capacity left
  // on each link after the DRF stage (the backfilling budget), in O(L)
  // without touching any flow.
  void residual_capacity(double p_star, std::vector<double>& out) const;

  std::size_t num_coflows() const { return coflows_.size(); }
  bool bound() const { return fabric_ != nullptr; }

  // Debug oracle: every tracked quantity must match a fresh rebuild of
  // `input` (integers exactly, doubles within 1e-9 relative). Throws
  // CheckError on divergence.
  void check_consistent(const ScheduleInput& input) const;

 private:
  struct CoflowState {
    double weight = 1.0;
    int bottleneck = 0;     // n̄_k = max_i count[i]
    int live_flows = 0;     // |unfinished flows|
    int counted_flows = 0;  // flows contributing to `count`
    std::vector<int> count;      // n_k^i (includes finished when stale)
    std::vector<int> live;       // unfinished flows only
    std::vector<LinkId> touched;  // links where count ever became > 0
  };

  // Adds (+1) or removes (-1) coflow `cs`'s contribution to the global
  // vectors over its touched links.
  void apply(const CoflowState& cs, int sign);

  static std::size_t index(LinkId link) {
    return static_cast<std::size_t>(link);
  }

  const Fabric* fabric_ = nullptr;
  bool count_finished_flows_;
  std::unordered_map<CoflowId, CoflowState> coflows_;
  std::vector<double> load_;
  std::vector<double> usage_weight_;
  std::vector<int> live_link_counts_;
};

}  // namespace ncdrf
