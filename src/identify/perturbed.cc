#include "identify/perturbed.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace ncdrf {

PerturbedGroupingScheduler::PerturbedGroupingScheduler(
    std::unique_ptr<Scheduler> inner, PerturbOptions options)
    : inner_(std::move(inner)), options_(options) {
  NCDRF_CHECK(inner_ != nullptr, "inner scheduler required");
  NCDRF_CHECK(options_.error_rate >= 0.0 && options_.error_rate <= 1.0,
              "error rate must be in [0, 1]");
}

ScheduleInput PerturbedGroupingScheduler::perturb(
    const ScheduleInput& input) const {
  if (options_.error_rate == 0.0 || input.coflows.size() < 2) return input;

  ScheduleInput out = input;
  // Deterministic per-flow decision: hash (seed, flow id) so a stray flow
  // stays stray, and stays with the same wrong coflow, for its lifetime.
  const std::size_t num_coflows = out.coflows.size();
  std::vector<std::vector<ActiveFlow>> moved(num_coflows);
  for (std::size_t k = 0; k < num_coflows; ++k) {
    auto& flows = out.coflows[k].flows;
    std::erase_if(flows, [&](const ActiveFlow& f) {
      Rng rng(options_.seed ^
              (static_cast<std::uint64_t>(f.id) * 0x9e3779b97f4a7c15ULL));
      if (!rng.bernoulli(options_.error_rate)) return false;
      // Misattribute to a random *other* active coflow.
      std::size_t target = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(num_coflows) - 2));
      if (target >= k) ++target;
      moved[target].push_back(f);
      return true;
    });
  }
  for (std::size_t k = 0; k < num_coflows; ++k) {
    out.coflows[k].flows.insert(out.coflows[k].flows.end(),
                                moved[k].begin(), moved[k].end());
  }
  // A coflow whose flows all strayed must not present an empty flow list.
  std::erase_if(out.coflows,
                [](const ActiveCoflow& c) { return c.flows.empty(); });
  return out;
}

Allocation PerturbedGroupingScheduler::allocate(const ScheduleInput& input) {
  const ScheduleInput perturbed = perturb(input);
  return inner_->allocate(perturbed);
}

std::optional<double> PerturbedGroupingScheduler::next_internal_event(
    const ScheduleInput& input, const Allocation& current) const {
  const ScheduleInput perturbed = perturb(input);
  return inner_->next_internal_event(perturbed, current);
}

}  // namespace ncdrf
