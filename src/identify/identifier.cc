#include "identify/identifier.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"

namespace ncdrf {
namespace {

// Union-find over observation indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    parent_[find(a)] = find(b);
  }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

CoflowIdentifier::CoflowIdentifier(IdentifierOptions options)
    : options_(options) {
  NCDRF_CHECK(options_.time_window_s >= 0.0,
              "time window must be non-negative");
}

std::vector<CoflowId> CoflowIdentifier::identify(
    const std::vector<FlowObservation>& observations) const {
  const std::size_t n = observations.size();
  std::vector<CoflowId> assignment(n, -1);
  if (n == 0) return assignment;

  // Sort indices by start time; only time-adjacent flows can merge, so a
  // sliding window over the sorted order finds all connected pairs.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (observations[a].start_time != observations[b].start_time) {
      return observations[a].start_time < observations[b].start_time;
    }
    return observations[a].flow < observations[b].flow;
  });

  UnionFind clusters(n);
  std::size_t window_begin = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FlowObservation& fi = observations[order[i]];
    while (observations[order[window_begin]].start_time <
           fi.start_time - options_.time_window_s) {
      ++window_begin;
    }
    for (std::size_t j = window_begin; j < i; ++j) {
      const FlowObservation& fj = observations[order[j]];
      if (fi.src == fj.src || fi.dst == fj.dst) {
        clusters.unite(order[i], order[j]);
      }
    }
  }

  // Densify root ids in first-appearance order (by start time) so results
  // are deterministic.
  std::unordered_map<std::size_t, CoflowId> dense;
  CoflowId next = 0;
  for (const std::size_t idx : order) {
    const std::size_t root = clusters.find(idx);
    const auto [it, inserted] = dense.try_emplace(root, next);
    if (inserted) ++next;
    assignment[idx] = it->second;
  }
  return assignment;
}

IdentificationQuality evaluate_identification(
    const std::vector<FlowObservation>& observations,
    const std::vector<CoflowId>& assignment) {
  NCDRF_CHECK(!observations.empty(), "nothing to evaluate");
  NCDRF_CHECK(observations.size() == assignment.size(),
              "assignment must cover every observation");

  // Pairwise counts: together-in-truth, together-in-clustering, both.
  long long truth_pairs = 0;
  long long cluster_pairs = 0;
  long long both_pairs = 0;
  const std::size_t n = observations.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_truth =
          observations[i].true_coflow == observations[j].true_coflow;
      const bool same_cluster = assignment[i] == assignment[j];
      truth_pairs += same_truth;
      cluster_pairs += same_cluster;
      both_pairs += same_truth && same_cluster;
    }
  }

  IdentificationQuality quality;
  quality.precision =
      cluster_pairs > 0
          ? static_cast<double>(both_pairs) / cluster_pairs
          : 1.0;  // no merged pairs → vacuously precise
  quality.recall = truth_pairs > 0
                       ? static_cast<double>(both_pairs) / truth_pairs
                       : 1.0;
  CoflowId max_id = -1;
  for (const CoflowId id : assignment) max_id = std::max(max_id, id);
  quality.num_clusters = max_id + 1;
  return quality;
}

}  // namespace ncdrf
