// CODA-style coflow identification (Zhang et al., SIGCOMM'16).
//
// NC-DRF needs to know which flows form a coflow (for the per-link flow
// counts n_k^i). The paper (Sec. III) names two ways to get it: the Aalo
// scheduler API (applications register coflows), or *automatic
// identification* à la CODA, which clusters observed flows "in the dark".
// This module implements the latter: flows that start close in time and
// share application-level structure (an endpoint community) are clustered
// into inferred coflows, and the result is scored against ground truth
// with the pairwise precision/recall CODA reports.
//
// The clustering is single-linkage over the relation
//   connected(f, g)  ⇔  |start_f − start_g| ≤ time_window
//                       ∧ (src_f = src_g ∨ dst_f = dst_g)
// computed with a union-find — a deterministic, O(n·m) stand-in for
// CODA's DBSCAN over (time, community) attributes that preserves the
// behaviour that matters here: time-adjacent, endpoint-sharing flows
// merge; isolated flows become singleton coflows.
#pragma once

#include <vector>

#include "coflow/flow.h"

namespace ncdrf {

// One observed flow start ("in the dark": no sizes, no coflow labels).
struct FlowObservation {
  FlowId flow = -1;
  MachineId src = -1;
  MachineId dst = -1;
  double start_time = 0.0;
  // Ground truth, used only by evaluate_identification().
  CoflowId true_coflow = -1;
};

struct IdentifierOptions {
  // Flows starting within this window of each other may belong to the
  // same coflow (CODA exploits the wave structure of stage starts).
  double time_window_s = 0.5;
};

class CoflowIdentifier {
 public:
  explicit CoflowIdentifier(IdentifierOptions options = {});

  // Clusters the observations; returns one inferred coflow id per
  // observation (dense ids, 0-based, deterministic).
  std::vector<CoflowId> identify(
      const std::vector<FlowObservation>& observations) const;

 private:
  IdentifierOptions options_;
};

// CODA's pairwise quality metrics: precision = P(two flows truly belong
// together | they were clustered together); recall = P(clustered together
// | truly together). Both 1.0 for a perfect identification; requires at
// least one observation.
struct IdentificationQuality {
  double precision = 0.0;
  double recall = 0.0;
  int num_clusters = 0;
};

IdentificationQuality evaluate_identification(
    const std::vector<FlowObservation>& observations,
    const std::vector<CoflowId>& assignment);

}  // namespace ncdrf
