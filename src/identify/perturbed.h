// PerturbedGroupingScheduler: injects coflow-identification errors between
// the driver and any non-clairvoyant scheduler.
//
// When coflows are identified automatically (CODA) instead of registered,
// some flows get attributed to the wrong coflow. This wrapper models that:
// before delegating to the inner policy, it reassigns each active flow,
// with probability `error_rate`, to a uniformly random *other* active
// coflow (CODA's "stray flow" error model). The perturbation is
// deterministic per (seed, coflow id, flow id), so a flow stays
// misattributed consistently across scheduling rounds rather than
// flickering.
//
// Measured in bench_identification: how gracefully NC-DRF's isolation
// degrades as identification accuracy drops — the property CODA calls
// error-tolerant scheduling.
#pragma once

#include <cstdint>
#include <memory>

#include "sched/scheduler.h"

namespace ncdrf {

struct PerturbOptions {
  double error_rate = 0.0;  // fraction of flows misattributed, in [0, 1]
  std::uint64_t seed = 1;
};

class PerturbedGroupingScheduler : public Scheduler {
 public:
  PerturbedGroupingScheduler(std::unique_ptr<Scheduler> inner,
                             PerturbOptions options);

  std::string name() const override {
    return inner_->name() + "+iderr";
  }
  bool clairvoyant() const override { return inner_->clairvoyant(); }

  Allocation allocate(const ScheduleInput& input) override;

  std::optional<double> next_internal_event(
      const ScheduleInput& input, const Allocation& current) const override;

 private:
  ScheduleInput perturb(const ScheduleInput& input) const;

  std::unique_ptr<Scheduler> inner_;
  PerturbOptions options_;
};

}  // namespace ncdrf
