#include "obs/audit.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <utility>

#include "common/check.h"
#include "sched/drf.h"
#include "sched/scheduler.h"

namespace ncdrf::obs {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// Shadow-world copy of a submitted coflow: the static flow description
// plus how many of its flows are still unfinished (remaining bits live in
// the auditor's dense per-FlowId table).
struct FairnessAuditor::ShadowCoflow {
  CoflowId id = -1;
  double arrival = 0.0;
  double weight = 1.0;
  std::vector<Flow> flows;
  int live_flows = 0;
};

FairnessAuditor::FairnessAuditor(const Fabric& fabric, AuditOptions options)
    : fabric_(fabric), options_(options) {}

FairnessAuditor::~FairnessAuditor() = default;

void FairnessAuditor::on_submit(const Coflow& coflow) {
  NCDRF_CHECK(!finalized_, "auditor already finalized");
  NCDRF_CHECK(pending_.empty() ||
                  coflow.arrival_time() >= pending_.back().arrival,
              "auditor submissions must be arrival-ordered");
  e_max_ = std::max(e_max_, coflow.demand(fabric_).disparity());
  arrivals_[coflow.id()] = coflow.arrival_time();

  ShadowCoflow shadow;
  shadow.id = coflow.id();
  shadow.arrival = coflow.arrival_time();
  shadow.weight = coflow.weight();
  shadow.flows = coflow.flows();
  shadow.live_flows = coflow.width();
  for (const Flow& f : shadow.flows) {
    const auto idx = static_cast<std::size_t>(f.id);
    if (idx >= remaining_bits_.size()) remaining_bits_.resize(idx + 1, 0.0);
    remaining_bits_[idx] = f.size_bits;
  }
  pending_.push_back(std::move(shadow));
}

void FairnessAuditor::admit_due() {
  while (next_pending_ < pending_.size() &&
         pending_[next_pending_].arrival <= shadow_now_) {
    active_.push_back(std::move(pending_[next_pending_]));
    ++next_pending_;
  }
}

bool FairnessAuditor::step_shadow(double limit) {
  admit_due();
  const double next_arrival = next_pending_ < pending_.size()
                                  ? pending_[next_pending_].arrival
                                  : kInf;
  if (active_.empty()) {
    // Idle gap: jump to the next arrival, or to the limit when none is due.
    shadow_now_ = std::min(next_arrival, limit);
    return next_arrival <= limit;
  }

  // Snapshot of the shadow world for the clairvoyant scheduler.
  ScheduleInput input;
  input.fabric = &fabric_;
  input.now = shadow_now_;
  input.coflows.reserve(active_.size());
  for (const ShadowCoflow& shadow : active_) {
    ActiveCoflow coflow;
    coflow.id = shadow.id;
    coflow.arrival_time = shadow.arrival;
    coflow.weight = shadow.weight;
    coflow.flows.reserve(static_cast<std::size_t>(shadow.live_flows));
    for (const Flow& f : shadow.flows) {
      if (remaining_bits_[static_cast<std::size_t>(f.id)] > 0.0) {
        coflow.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, f.dst});
      }
    }
    input.coflows.push_back(std::move(coflow));
  }
  const ClairvoyantInfo info(&remaining_bits_);
  input.clairvoyant = &info;

  DrfScheduler drf;
  const Allocation alloc = drf.allocate(input);

  // Earliest shadow flow completion under these (constant) rates.
  double dt = kInf;
  for (const ActiveCoflow& coflow : input.coflows) {
    for (const ActiveFlow& f : coflow.flows) {
      const double rate = alloc.rate(f.id);
      if (rate <= 0.0) continue;
      const double remaining =
          remaining_bits_[static_cast<std::size_t>(f.id)];
      dt = std::min(dt, std::max(remaining, 0.0) / rate);
    }
  }
  NCDRF_CHECK(std::isfinite(dt) || next_arrival < kInf || limit < kInf,
              "shadow DRF made no progress (starved allocation)");
  const double step_end =
      std::min({shadow_now_ + dt, next_arrival, limit});
  const double elapsed = step_end - shadow_now_;

  // Integrate, then retire finished flows and coflows.
  for (ShadowCoflow& shadow : active_) {
    for (const Flow& f : shadow.flows) {
      const auto idx = static_cast<std::size_t>(f.id);
      if (remaining_bits_[idx] <= 0.0) continue;
      if (elapsed > 0.0) {
        remaining_bits_[idx] -= alloc.rate(f.id) * elapsed;
      }
      if (remaining_bits_[idx] <= options_.completion_epsilon_bits) {
        remaining_bits_[idx] = 0.0;
        --shadow.live_flows;
      }
    }
  }
  shadow_now_ = step_end;
  for (std::size_t i = 0; i < active_.size();) {
    if (active_[i].live_flows <= 0) {
      shadow_cct_[active_[i].id] = shadow_now_ - active_[i].arrival;
      active_[i] = std::move(active_.back());
      active_.pop_back();
    } else {
      ++i;
    }
  }
  return true;
}

void FairnessAuditor::advance_to(double t) {
  long long steps = 0;
  while (shadow_now_ < t &&
         (!active_.empty() || next_pending_ < pending_.size())) {
    if (!step_shadow(t)) break;
    NCDRF_CHECK(++steps < 10'000'000,
                "shadow DRF simulation failed to advance");
  }
  shadow_now_ = std::max(shadow_now_, t);
  if (cached_p_star_t_ < shadow_now_) cached_p_star_t_ = -1.0;
}

double FairnessAuditor::shadow_p_star_at(double t) {
  advance_to(t);
  if (cached_p_star_t_ == t) return cached_p_star_;
  ScheduleInput input;
  input.fabric = &fabric_;
  input.now = shadow_now_;
  input.coflows.reserve(active_.size());
  for (const ShadowCoflow& shadow : active_) {
    ActiveCoflow coflow;
    coflow.id = shadow.id;
    coflow.weight = shadow.weight;
    for (const Flow& f : shadow.flows) {
      if (remaining_bits_[static_cast<std::size_t>(f.id)] > 0.0) {
        coflow.flows.push_back(ActiveFlow{f.id, f.coflow, f.src, f.dst});
      }
    }
    input.coflows.push_back(std::move(coflow));
  }
  const ClairvoyantInfo info(&remaining_bits_);
  input.clairvoyant = &info;
  cached_p_star_ = DrfScheduler::optimal_progress(input);
  cached_p_star_t_ = t;
  return cached_p_star_;
}

void FairnessAuditor::record(double t0, double t1, CoflowId coflow,
                             double progress_bps, double dominant_share) {
  if (!options_.record_series) {
    advance_to(t0);
    return;
  }
  const double p_star = shadow_p_star_at(t0);
  double shadow_progress = 0.0;
  for (const ShadowCoflow& shadow : active_) {
    if (shadow.id == coflow) {
      shadow_progress = shadow.weight * p_star;
      break;
    }
  }
  series_.push_back(AuditSample{t0, t1, coflow, progress_bps,
                                dominant_share, shadow_progress});
}

void FairnessAuditor::check_envelope(CoflowId coflow, double real_cct) {
  const auto it = shadow_cct_.find(coflow);
  if (it == shadow_cct_.end()) {
    // Shadow is slower than the real run here; the bound cannot fail until
    // F_k^D stops growing, so settle it at finalize().
    deferred_[coflow] = real_cct;
    return;
  }
  ++coflows_checked_;
  if (it->second <= 0.0) return;  // zero-demand coflow: no meaningful ratio
  const double ratio = real_cct / it->second;
  max_ratio_ = std::max(max_ratio_, ratio);
  if (ratio > e_max_ * (1.0 + options_.envelope_tolerance)) {
    violations_.push_back(
        AuditViolation{coflow, real_cct, it->second, ratio, e_max_});
  }
}

void FairnessAuditor::on_complete(CoflowId coflow, double arrival,
                                  double completion) {
  NCDRF_CHECK(arrivals_.count(coflow) > 0,
              "coflow completed without a matching on_submit");
  advance_to(completion);
  check_envelope(coflow, completion - arrival);
}

void FairnessAuditor::finalize() {
  if (finalized_) return;
  finalized_ = true;
  long long steps = 0;
  while (!active_.empty() || next_pending_ < pending_.size()) {
    step_shadow(kInf);
    NCDRF_CHECK(++steps < 10'000'000,
                "shadow DRF simulation failed to drain");
  }
  for (const auto& [coflow, real_cct] : deferred_) {
    check_envelope(coflow, real_cct);
  }
  deferred_.clear();
}

double FairnessAuditor::shadow_cct(CoflowId coflow) const {
  const auto it = shadow_cct_.find(coflow);
  return it == shadow_cct_.end() ? 0.0 : it->second;
}

void FairnessAuditor::write_series_csv(std::ostream& out) {
  finalize();
  const auto precision = out.precision();
  out << std::setprecision(15);
  out << "t0,t1,coflow,progress_bps,dominant_share,shadow_progress_bps,"
         "envelope_bps\n";
  for (const AuditSample& s : series_) {
    out << s.t0 << ',' << s.t1 << ',' << s.coflow << ',' << s.progress
        << ',' << s.dominant_share << ',' << s.shadow_progress << ','
        << e_max_ * s.shadow_progress << '\n';
  }
  out.precision(precision);
}

void FairnessAuditor::write_report_json(std::ostream& out) {
  finalize();
  const auto precision = out.precision();
  out << std::setprecision(15);
  out << "{\"e_max\":" << e_max_
      << ",\"coflows_checked\":" << coflows_checked_
      << ",\"max_ratio\":" << max_ratio_ << ",\"violations\":[";
  bool first = true;
  for (const AuditViolation& v : violations_) {
    out << (first ? "" : ",") << "{\"coflow\":" << v.coflow
        << ",\"real_cct\":" << v.real_cct
        << ",\"shadow_cct\":" << v.shadow_cct << ",\"ratio\":" << v.ratio
        << ",\"bound\":" << v.bound << '}';
    first = false;
  }
  out << "]}\n";
  out.precision(precision);
}

}  // namespace ncdrf::obs
