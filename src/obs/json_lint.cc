#include "obs/json_lint.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace ncdrf::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON DOM + recursive-descent parser. Enough of RFC 8259 for the
// artifacts this layer emits (no \u surrogate pairs decoded — they are
// validated and kept escaped; our exporters never produce them).
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
  const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  // Parses one complete document; error() is non-empty on failure.
  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (error_.empty() && pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return value;
  }

  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      std::ostringstream out;
      out << what << " at offset " << pos_;
      error_ = out.str();
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (c == 't') {
      if (literal("true")) return JsonValue{true};
      fail("invalid literal");
      return {};
    }
    if (c == 'f') {
      if (literal("false")) return JsonValue{false};
      fail("invalid literal");
      return {};
    }
    if (c == 'n') {
      if (literal("null")) return JsonValue{nullptr};
      fail("invalid literal");
      return {};
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character");
    return {};
  }

  std::string parse_string() {
    std::string out;
    if (!consume('"')) {
      fail("expected string");
      return out;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              fail("invalid \\u escape");
              return out;
            }
            ++pos_;
          }
          out.push_back('?');  // kept escaped; content is irrelevant here
          break;
        }
        default:
          fail("invalid escape character");
          return out;
      }
    }
    fail("unterminated string");
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
      return {};
    }
    // Leading zeros are invalid JSON ("01"), a single zero is fine.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number");
        return {};
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("invalid number");
        return {};
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const double value = std::strtod(text_.c_str() + start, nullptr);
    if (!std::isfinite(value)) {
      fail("number out of range");
      return {};
    }
    return JsonValue{value};
  }

  JsonValue parse_array() {
    consume('[');
    auto array = std::make_shared<JsonArray>();
    skip_ws();
    if (consume(']')) return JsonValue{array};
    while (error_.empty()) {
      array->push_back(parse_value());
      if (!error_.empty()) break;
      if (consume(']')) return JsonValue{array};
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        break;
      }
    }
    return {};
  }

  JsonValue parse_object() {
    consume('{');
    auto object = std::make_shared<JsonObject>();
    skip_ws();
    if (consume('}')) return JsonValue{object};
    while (error_.empty()) {
      skip_ws();
      std::string key = parse_string();
      if (!error_.empty()) break;
      if (!consume(':')) {
        fail("expected ':' in object");
        break;
      }
      (*object)[std::move(key)] = parse_value();
      if (!error_.empty()) break;
      if (consume('}')) return JsonValue{object};
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        break;
      }
    }
    return {};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Schema checks.
// ---------------------------------------------------------------------------

const JsonValue* find(const JsonObject& object, const std::string& key) {
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

std::string require_number(const JsonObject& object, const std::string& key,
                          const std::string& where) {
  const JsonValue* value = find(object, key);
  if (value == nullptr) return where + ": missing \"" + key + '"';
  if (!value->is_number()) return where + ": \"" + key + "\" not a number";
  return "";
}

std::string check_trace_event(const JsonObject& event, std::size_t index,
                              std::vector<std::string>& open_spans) {
  std::ostringstream where_s;
  where_s << "traceEvents[" << index << ']';
  const std::string where = where_s.str();

  const JsonValue* name = find(event, "name");
  if (name == nullptr || !name->is_string()) {
    return where + ": missing string \"name\"";
  }
  const JsonValue* cat = find(event, "cat");
  if (cat == nullptr || !cat->is_string()) {
    return where + ": missing string \"cat\"";
  }
  const JsonValue* ph = find(event, "ph");
  if (ph == nullptr || !ph->is_string() || ph->string().size() != 1) {
    return where + ": missing one-character \"ph\"";
  }
  for (const char* key : {"ts", "pid", "tid"}) {
    if (std::string err = require_number(event, key, where); !err.empty()) {
      return err;
    }
  }
  const JsonValue* args = find(event, "args");
  if (args != nullptr && !args->is_object()) {
    return where + ": \"args\" not an object";
  }

  const char phase = ph->string()[0];
  switch (phase) {
    case 'B':
      open_spans.push_back(name->string());
      return "";
    case 'E':
      if (open_spans.empty()) {
        return where + ": 'E' with no open 'B' span";
      }
      if (open_spans.back() != name->string()) {
        return where + ": 'E' for \"" + name->string() +
               "\" but innermost open span is \"" + open_spans.back() + '"';
      }
      open_spans.pop_back();
      return "";
    case 'i': {
      const JsonValue* scope = find(event, "s");
      if (scope != nullptr && !scope->is_string()) {
        return where + ": instant scope \"s\" not a string";
      }
      return "";
    }
    case 'b':
    case 'e': {
      if (std::string err = require_number(event, "id", where); !err.empty()) {
        return err;
      }
      return "";
    }
    case 'X':
      return require_number(event, "dur", where);
    case 'M':
    case 'C':
      return "";
    default:
      return where + ": unknown phase '" + std::string(1, phase) + '\'';
  }
}

// The per-event field checks of check_trace_event without the span
// bookkeeping — what a flight bundle's trace *slice* can promise (a slice
// may cut a span in half, so B/E balance is not required there).
std::string check_event_fields(const JsonObject& event,
                               const std::string& where) {
  const JsonValue* name = find(event, "name");
  if (name == nullptr || !name->is_string()) {
    return where + ": missing string \"name\"";
  }
  const JsonValue* ph = find(event, "ph");
  if (ph == nullptr || !ph->is_string() || ph->string().size() != 1) {
    return where + ": missing one-character \"ph\"";
  }
  for (const char* key : {"ts", "pid", "tid"}) {
    if (std::string err = require_number(event, key, where); !err.empty()) {
      return err;
    }
  }
  return "";
}

std::string check_histogram_entry(const std::string& name,
                                  const JsonValue& value) {
  const std::string where = "histograms." + name;
  if (!value.is_object()) return where + ": not an object";
  const JsonObject& entry = value.object();
  for (const char* key :
       {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}) {
    if (std::string err = require_number(entry, key, where); !err.empty()) {
      return err;
    }
  }
  const double p50 = find(entry, "p50")->number();
  const double p95 = find(entry, "p95")->number();
  const double p99 = find(entry, "p99")->number();
  if (!(p50 <= p95 && p95 <= p99)) {
    return where + ": quantiles not ordered (p50 <= p95 <= p99)";
  }
  return "";
}

// MetricsRegistry::write_json schema over an already-parsed object —
// shared between validate_metrics_json and the flight bundle's embedded
// "metrics" section.
std::string check_metrics_object(const JsonObject& top) {
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* value = find(top, section);
    if (value == nullptr || !value->is_object()) {
      return std::string("missing \"") + section + "\" object";
    }
  }
  for (const auto& [name, value] : find(top, "counters")->object()) {
    if (!value.is_number()) return "counters." + name + ": not a number";
  }
  for (const auto& [name, value] : find(top, "gauges")->object()) {
    if (!value.is_number()) return "gauges." + name + ": not a number";
  }
  for (const auto& [name, value] : find(top, "histograms")->object()) {
    if (std::string err = check_histogram_entry(name, value); !err.empty()) {
      return err;
    }
  }
  return "";
}

// One timeseries snapshot object (a SnapshotStream NDJSON line or a
// flight bundle "timeseries" element), plus the stream-ordering contract:
// strictly increasing windows, t1 > t0, gap-free spans. `prev_window` /
// `prev_t1` carry the contract across snapshots (start at -inf).
std::string check_snapshot_object(const JsonObject& snap,
                                  const std::string& where,
                                  double& prev_window, double& prev_t1) {
  for (const char* key : {"window", "t0", "t1"}) {
    if (std::string err = require_number(snap, key, where); !err.empty()) {
      return err;
    }
  }
  const double window = find(snap, "window")->number();
  const double t0 = find(snap, "t0")->number();
  const double t1 = find(snap, "t1")->number();
  if (window <= prev_window) {
    return where + ": window numbers not strictly increasing";
  }
  if (t1 <= t0) return where + ": window span is empty (t1 <= t0)";
  if (prev_t1 > -std::numeric_limits<double>::infinity() && t0 != prev_t1) {
    return where + ": window spans not contiguous (t0 != previous t1)";
  }
  prev_window = window;
  prev_t1 = t1;
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const JsonValue* value = find(snap, section);
    if (value == nullptr || !value->is_object()) {
      return where + ": missing \"" + section + "\" object";
    }
  }
  for (const auto& [name, value] : find(snap, "counters")->object()) {
    const std::string cwhere = where + ".counters." + name;
    if (!value.is_object()) return cwhere + ": not an object";
    for (const char* key : {"total", "delta", "rate_per_s"}) {
      if (std::string err = require_number(value.object(), key, cwhere);
          !err.empty()) {
        return err;
      }
    }
  }
  for (const auto& [name, value] : find(snap, "gauges")->object()) {
    if (!value.is_number()) {
      return where + ".gauges." + name + ": not a number";
    }
  }
  for (const auto& [name, value] : find(snap, "histograms")->object()) {
    const std::string hwhere = where + ".histograms." + name;
    if (!value.is_object()) return hwhere + ": not an object";
    for (const char* key : {"count", "sum", "p50", "p95", "p99"}) {
      if (std::string err = require_number(value.object(), key, hwhere);
          !err.empty()) {
        return err;
      }
    }
    const double p50 = find(value.object(), "p50")->number();
    const double p95 = find(value.object(), "p95")->number();
    const double p99 = find(value.object(), "p99")->number();
    if (!(p50 <= p95 && p95 <= p99)) {
      return hwhere + ": quantiles not ordered (p50 <= p95 <= p99)";
    }
  }
  return "";
}

}  // namespace

std::string validate_json(const std::string& text) {
  Parser parser(text);
  parser.parse();
  return parser.error();
}

std::string validate_chrome_trace_json(const std::string& text) {
  Parser parser(text);
  const JsonValue root = parser.parse();
  if (!parser.error().empty()) return parser.error();
  if (!root.is_object()) return "top level is not an object";
  const JsonObject& top = root.object();
  const JsonValue* events = find(top, "traceEvents");
  if (events == nullptr || !events->is_array()) {
    return "missing \"traceEvents\" array";
  }
  if (const JsonValue* dropped = find(top, "droppedEvents");
      dropped != nullptr && !dropped->is_number()) {
    return "\"droppedEvents\" not a number";
  }
  std::vector<std::string> open_spans;
  double last_ts = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < events->array().size(); ++i) {
    const JsonValue& event = events->array()[i];
    if (!event.is_object()) {
      std::ostringstream out;
      out << "traceEvents[" << i << "]: not an object";
      return out.str();
    }
    if (std::string err = check_trace_event(event.object(), i, open_spans);
        !err.empty()) {
      return err;
    }
    const double ts = find(event.object(), "ts")->number();
    if (ts < last_ts) {
      std::ostringstream out;
      out << "traceEvents[" << i << "]: timestamps not non-decreasing";
      return out.str();
    }
    last_ts = ts;
  }
  if (!open_spans.empty()) {
    return "unbalanced spans: \"" + open_spans.back() + "\" never closed";
  }
  return "";
}

std::string validate_metrics_json(const std::string& text) {
  Parser parser(text);
  const JsonValue root = parser.parse();
  if (!parser.error().empty()) return parser.error();
  if (!root.is_object()) return "top level is not an object";
  return check_metrics_object(root.object());
}

std::string validate_ndjson(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Parser parser(line);
    const JsonValue value = parser.parse();
    if (!parser.error().empty()) {
      std::ostringstream out;
      out << "line " << line_no << ": " << parser.error();
      return out.str();
    }
    if (!value.is_object()) {
      std::ostringstream out;
      out << "line " << line_no << ": not a JSON object";
      return out.str();
    }
  }
  return "";
}

std::string validate_timeseries_ndjson(const std::string& text) {
  // An append-only stream ends every record with '\n'; a final line
  // without one is a write cut mid-record.
  if (!text.empty() && text.back() != '\n') {
    return "truncated final line (missing newline)";
  }
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  double prev_window = -std::numeric_limits<double>::infinity();
  double prev_t1 = -std::numeric_limits<double>::infinity();
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Parser parser(line);
    const JsonValue value = parser.parse();
    std::ostringstream where;
    where << "line " << line_no;
    if (!parser.error().empty()) {
      return where.str() + ": " + parser.error();
    }
    if (!value.is_object()) return where.str() + ": not a JSON object";
    if (std::string err = check_snapshot_object(value.object(), where.str(),
                                                prev_window, prev_t1);
        !err.empty()) {
      return err;
    }
  }
  return "";
}

std::string validate_flight_bundle_json(const std::string& text) {
  Parser parser(text);
  const JsonValue root = parser.parse();
  if (!parser.error().empty()) return parser.error();
  if (!root.is_object()) return "top level is not an object";
  const JsonObject& top = root.object();

  const JsonValue* bundle = find(top, "bundle");
  if (bundle == nullptr || !bundle->is_string() ||
      bundle->string() != "ncdrf.flight") {
    return "missing \"bundle\":\"ncdrf.flight\" marker";
  }
  if (std::string err = require_number(top, "seq", "bundle"); !err.empty()) {
    return err;
  }

  const JsonValue* trigger = find(top, "trigger");
  if (trigger == nullptr || !trigger->is_object()) {
    return "missing \"trigger\" object";
  }
  const JsonValue* kind = find(trigger->object(), "kind");
  if (kind == nullptr || !kind->is_string()) {
    return "trigger: missing string \"kind\"";
  }
  const JsonValue* detail = find(trigger->object(), "detail");
  if (detail == nullptr || !detail->is_string()) {
    return "trigger: missing string \"detail\"";
  }
  for (const char* key : {"time", "value"}) {
    if (std::string err = require_number(trigger->object(), key, "trigger");
        !err.empty()) {
      return err;
    }
  }

  const JsonValue* config = find(top, "config");
  if (config == nullptr || !config->is_object()) {
    return "missing \"config\" object";
  }

  const JsonValue* metrics = find(top, "metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return "missing \"metrics\" object";
  }
  if (std::string err = check_metrics_object(metrics->object());
      !err.empty()) {
    return "metrics: " + err;
  }

  const JsonValue* timeseries = find(top, "timeseries");
  if (timeseries == nullptr || !timeseries->is_array()) {
    return "missing \"timeseries\" array";
  }
  double prev_window = -std::numeric_limits<double>::infinity();
  double prev_t1 = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < timeseries->array().size(); ++i) {
    const JsonValue& snap = timeseries->array()[i];
    std::ostringstream where;
    where << "timeseries[" << i << ']';
    if (!snap.is_object()) return where.str() + ": not an object";
    if (std::string err = check_snapshot_object(snap.object(), where.str(),
                                                prev_window, prev_t1);
        !err.empty()) {
      return err;
    }
  }

  const JsonValue* trace = find(top, "trace");
  if (trace == nullptr || !trace->is_object()) {
    return "missing \"trace\" object";
  }
  if (std::string err = require_number(trace->object(), "dropped", "trace");
      !err.empty()) {
    return err;
  }
  const JsonValue* events = find(trace->object(), "events");
  if (events == nullptr || !events->is_array()) {
    return "trace: missing \"events\" array";
  }
  for (std::size_t i = 0; i < events->array().size(); ++i) {
    const JsonValue& event = events->array()[i];
    std::ostringstream where;
    where << "trace.events[" << i << ']';
    if (!event.is_object()) return where.str() + ": not an object";
    if (std::string err = check_event_fields(event.object(), where.str());
        !err.empty()) {
      return err;
    }
  }
  return "";
}

std::string parse_timeseries_line(const std::string& line, SnapshotRow* out) {
  Parser parser(line);
  const JsonValue root = parser.parse();
  if (!parser.error().empty()) return parser.error();
  if (!root.is_object()) return "not a JSON object";
  const JsonObject& snap = root.object();
  double prev_window = -std::numeric_limits<double>::infinity();
  double prev_t1 = -std::numeric_limits<double>::infinity();
  if (std::string err =
          check_snapshot_object(snap, "snapshot", prev_window, prev_t1);
      !err.empty()) {
    return err;
  }
  out->window = find(snap, "window")->number();
  out->t0 = find(snap, "t0")->number();
  out->t1 = find(snap, "t1")->number();
  out->counters.clear();
  out->gauges.clear();
  out->histograms.clear();
  for (const auto& [name, value] : find(snap, "counters")->object()) {
    out->counters.emplace_back(
        name, std::vector<double>{find(value.object(), "total")->number(),
                                  find(value.object(), "delta")->number(),
                                  find(value.object(), "rate_per_s")->number()});
  }
  for (const auto& [name, value] : find(snap, "gauges")->object()) {
    out->gauges.emplace_back(name, value.number());
  }
  for (const auto& [name, value] : find(snap, "histograms")->object()) {
    out->histograms.emplace_back(
        name, std::vector<double>{find(value.object(), "count")->number(),
                                  find(value.object(), "sum")->number(),
                                  find(value.object(), "p50")->number(),
                                  find(value.object(), "p95")->number(),
                                  find(value.object(), "p99")->number()});
  }
  return "";
}

std::string validate_gaming_json(const std::string& text) {
  Parser parser(text);
  const JsonValue root = parser.parse();
  if (!parser.error().empty()) return parser.error();
  if (!root.is_object()) return "top level is not an object";
  const JsonObject& top = root.object();
  const JsonValue* benchmark = find(top, "benchmark");
  if (benchmark == nullptr || !benchmark->is_string() ||
      benchmark->string() != "bench_gaming") {
    return "missing \"benchmark\": \"bench_gaming\" tag";
  }
  const JsonValue* rows = find(top, "rows");
  if (rows == nullptr || !rows->is_array()) return "missing \"rows\" array";
  for (std::size_t i = 0; i < rows->array().size(); ++i) {
    std::ostringstream where_s;
    where_s << "rows[" << i << ']';
    const std::string where = where_s.str();
    const JsonValue& value = rows->array()[i];
    if (!value.is_object()) return where + ": not an object";
    const JsonObject& row = value.object();
    for (const char* key : {"policy", "strategy"}) {
      const JsonValue* field = find(row, key);
      if (field == nullptr || !field->is_string()) {
        return where + ": \"" + key + "\" not a string";
      }
    }
    for (const char* key :
         {"honest_fraction", "clients", "machines", "attackers", "coflows",
          "utilization", "jain_coflow", "jain_tenant", "log_welfare",
          "attacker_gain", "victim_slowdown", "makespan_s"}) {
      if (std::string err = require_number(row, key, where); !err.empty()) {
        return err;
      }
    }
    const double fraction = find(row, "honest_fraction")->number();
    if (fraction <= 0.0 || fraction >= 1.0) {
      return where + ": honest_fraction outside (0, 1)";
    }
    for (const char* key : {"attacker_gain", "victim_slowdown"}) {
      if (find(row, key)->number() <= 0.0) {
        return where + ": \"" + std::string(key) + "\" not positive";
      }
    }
    for (const char* key : {"jain_coflow", "jain_tenant", "utilization"}) {
      const double v = find(row, key)->number();
      if (v < 0.0 || v > 1.0 + 1e-9) {
        return where + ": \"" + std::string(key) + "\" outside [0, 1]";
      }
    }
  }
  return "";
}

}  // namespace ncdrf::obs
