// Exposition formats for the live telemetry plane.
//
// Two surfaces over the same data:
//
//   * write_prometheus_text — the MetricsRegistry as Prometheus text
//     exposition (one # TYPE line per metric, histograms as summaries
//     with quantile labels). Names are sanitized to the Prometheus
//     charset ('.' and other separators become '_') and prefixed, so
//     "serve.admit_latency_s" scrapes as ncdrf_serve_admit_latency_s.
//
//   * snapshot NDJSON — each closed Timeseries window as one JSON line
//     (write_snapshot_json), and SnapshotStream as the append-only tail:
//     poll() writes every window closed since the last poll, in order,
//     never rewriting a line. tools/obs_top tails the file to render a
//     live table; obs/json_lint.h validates the stream's schema and
//     window ordering.
//
// Both writers are deterministic: fixed key order, name-sorted metrics,
// %.15g-equivalent number formatting — under virtual time a double run
// produces byte-identical output.
#pragma once

#include <iosfwd>
#include <string>

namespace ncdrf::obs {

class MetricsRegistry;
class Timeseries;
struct TimeseriesSnapshot;

// Prometheus text exposition (format 0.0.4) of the registry's current
// state. Counters get a _total suffix; histograms export as summaries
// ({quantile="0.5|0.95|0.99"}, _sum, _count) using the shared Quantiles
// estimator.
void write_prometheus_text(std::ostream& out, const MetricsRegistry& registry,
                           const std::string& prefix = "ncdrf_");

// One snapshot as a single NDJSON line (newline-terminated):
// {"window":K,"t0":…,"t1":…,"counters":{name:{"total":…,"delta":…,
//  "rate_per_s":…}},"gauges":{name:v},"histograms":{name:{"count":…,
//  "sum":…,"p50":…,"p95":…,"p99":…}}}
void write_snapshot_json(std::ostream& out, const TimeseriesSnapshot& snap);

// Append-only NDJSON stream of a Timeseries' closed windows. The caller
// owns the ostream (file or pipe) and calls poll() at any cadence; each
// call appends the windows not yet written and returns how many.
class SnapshotStream {
 public:
  explicit SnapshotStream(std::ostream& out) : out_(out) {}

  SnapshotStream(const SnapshotStream&) = delete;
  SnapshotStream& operator=(const SnapshotStream&) = delete;

  long long poll(const Timeseries& timeseries);
  long long windows_written() const { return windows_written_; }

 private:
  std::ostream& out_;
  long long windows_written_ = 0;
  long long last_window_ = -1;
};

}  // namespace ncdrf::obs
