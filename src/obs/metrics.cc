#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/check.h"

namespace ncdrf::obs {

Histogram::Histogram(double min_value, double max_value, double growth)
    : min_value_(min_value), growth_(growth), log_growth_(std::log(growth)) {
  NCDRF_CHECK(min_value > 0.0 && max_value > min_value && growth > 1.0,
              "histogram needs 0 < min < max and growth > 1");
  const auto spans = static_cast<std::size_t>(
      std::ceil(std::log(max_value / min_value) / log_growth_));
  buckets_.assign(spans + 2, 0);  // [<=min] + spans + overflow
}

std::size_t Histogram::bucket_of(double value) const {
  if (value <= min_value_) return 0;
  const auto i = static_cast<std::size_t>(
      std::ceil(std::log(value / min_value_) / log_growth_ - 1e-12));
  return std::min(i, buckets_.size() - 1);
}

void Histogram::observe(double value) {
  NCDRF_CHECK(std::isfinite(value) && value >= 0.0,
              "histogram values must be finite and non-negative");
  ++buckets_[bucket_of(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::quantile_from_counts(const std::vector<long long>& counts,
                                       double p) const {
  NCDRF_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
  NCDRF_CHECK(counts.size() == buckets_.size(),
              "bucket-count vector does not match the histogram geometry");
  long long total = 0;
  for (const long long c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target sample (nearest-rank on the bucketed counts), then
  // a geometric interpolation inside the bucket it falls in.
  const double rank = p / 100.0 * static_cast<double>(total - 1);
  long long seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto before = static_cast<double>(seen);
    seen += counts[i];
    if (rank < static_cast<double>(seen)) {
      const double lo =
          i == 0 ? min_value_ * std::pow(growth_, -1.0)
                 : min_value_ * std::pow(growth_, static_cast<double>(i) - 1.0);
      const double hi = min_value_ * std::pow(growth_, static_cast<double>(i));
      const double frac = counts[i] > 1
                              ? (rank - before) /
                                    static_cast<double>(counts[i] - 1)
                              : 0.5;
      return lo * std::pow(hi / lo, frac);
    }
  }
  return min_value_ * std::pow(growth_, static_cast<double>(counts.size()));
}

Quantiles Histogram::quantiles_from_counts(
    const std::vector<long long>& counts) const {
  return Quantiles{quantile_from_counts(counts, 50.0),
                   quantile_from_counts(counts, 95.0),
                   quantile_from_counts(counts, 99.0)};
}

double Histogram::percentile(double p) const {
  if (count_ == 0) {
    NCDRF_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
    return 0.0;
  }
  // The cumulative counts additionally know the observed extrema, so the
  // bucket estimate is clamped to [min, max] (exact for the tails).
  return std::clamp(quantile_from_counts(buckets_, p), min_, max_);
}

Quantiles Histogram::quantiles() const {
  return Quantiles{percentile(50.0), percentile(95.0), percentile(99.0)};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_.try_emplace(name).first->second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      double min_value, double max_value,
                                      double growth) {
  return histograms_
      .try_emplace(name, min_value, max_value, growth)
      .first->second;
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::setprecision(15);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "" : ",") << '"' << name << "\":" << c.value;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "" : ",") << '"' << name << "\":" << g.value;
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "" : ",") << '"' << name << "\":{\"count\":" << h.count()
        << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
        << ",\"max\":" << h.max() << ",\"mean\":" << h.mean()
        << ",\"p50\":" << h.percentile(50.0)
        << ",\"p95\":" << h.percentile(95.0)
        << ",\"p99\":" << h.percentile(99.0) << '}';
    first = false;
  }
  out << "}}\n";
  out.flags(flags);
  out.precision(precision);
}

}  // namespace ncdrf::obs
