// Streaming fairness auditor — checks the paper's long-term isolation
// guarantee (Theorem 1) against a live run instead of trusting it.
//
// The auditor shadows the real (non-clairvoyant) run with a private
// clairvoyant-DRF fluid simulation fed the *same* arrivals: every coflow
// the driver submits is also admitted to the shadow, which integrates
// DrfScheduler allocations between its own flow completions. That yields
// the baseline completion times F_k^D of the theorem's statement
// F_k ≤ e_max · F_k^D without a second driver run, where e_max is the
// instance-wide maximum intra-coflow demand disparity (Eq. 4) over the
// coflows seen so far.
//
// Two outputs:
//   * violations(): coflows whose real completion broke the envelope —
//     checked the moment the real run retires them (deferred to
//     finalize() for coflows the slower shadow hasn't finished yet, since
//     the bound cannot be violated while F_k^D is still growing).
//   * series(): per-interval samples pairing the real run's instantaneous
//     progress P_k and dominant-link share with the shadow's P_k^D and
//     the envelope line e_max·P_k^D — the Fig. 8-style time series, via
//     write_series_csv().
//
// The shadow costs O(active flows) per integration step and is meant for
// audit-grade runs (theorem instances, testbed traces, CI), not for the
// 500-coflow replay hot path — drivers attach an auditor only on request.
#pragma once

#include <iosfwd>
#include <map>
#include <ostream>
#include <vector>

#include "coflow/coflow.h"
#include "fabric/fabric.h"

namespace ncdrf::obs {

struct AuditOptions {
  // Slack on the envelope check, matching the theorem1_test tolerance:
  // flag only F_k > e_max · F_k^D · (1 + tolerance).
  double envelope_tolerance = 1e-6;
  // Shadow flows with fewer remaining bits are complete (float-drift
  // guard, mirroring SimOptions::completion_epsilon_bits).
  double completion_epsilon_bits = 1.0;
  // Record the per-interval progress series (disable for check-only runs
  // where only completion-time envelopes matter).
  bool record_series = true;
};

// One per-coflow sample over [t0, t1): the real run's instantaneous
// progress and dominant-link share next to the shadow DRF baseline. The
// envelope line of the plots is e_max() · shadow_progress.
struct AuditSample {
  double t0 = 0.0;
  double t1 = 0.0;
  CoflowId coflow = -1;
  double progress = 0.0;         // real P_k, bps (Eq. 1)
  double dominant_share = 0.0;   // real share of the coflow's dominant link
  double shadow_progress = 0.0;  // P_k^D = weight·P* in the shadow; 0 once
                                 // the shadow already finished the coflow
};

// A coflow whose real completion broke Theorem 1's envelope.
struct AuditViolation {
  CoflowId coflow = -1;
  double real_cct = 0.0;
  double shadow_cct = 0.0;
  double ratio = 0.0;  // real_cct / shadow_cct
  double bound = 0.0;  // e_max at check time
};

class FairnessAuditor {
 public:
  explicit FairnessAuditor(const Fabric& fabric, AuditOptions options = {});
  ~FairnessAuditor();

  // Registers an arriving coflow with both sides of the audit (updates
  // e_max, queues the coflow for the shadow). Must be called in
  // non-decreasing arrival order, before the real run first reports on the
  // coflow.
  void on_submit(const Coflow& coflow);

  // Advances the shadow DRF simulation to time t (idempotent; drivers may
  // call it explicitly or rely on record()/on_complete() doing so).
  void advance_to(double t);

  // One real-run sample for a coflow over [t0, t1): its instantaneous
  // progress (Eq. 1) and its share of its dominant link's capacity.
  void record(double t0, double t1, CoflowId coflow, double progress_bps,
              double dominant_share);

  // Real-run completion: checks F_k = completion − arrival against
  // e_max · F_k^D, deferring when the shadow has not finished k yet.
  void on_complete(CoflowId coflow, double arrival, double completion);

  // Drains the shadow to completion and resolves deferred checks. Called
  // automatically by the destructor and the report/CSV writers; safe to
  // call repeatedly.
  void finalize();

  // Maximum intra-coflow disparity e_k (Eq. 4) over submitted coflows;
  // 1.0 before any submission.
  double e_max() const { return e_max_; }

  // Shadow completion time F_k^D; 0 until the shadow finishes the coflow.
  double shadow_cct(CoflowId coflow) const;

  long long coflows_checked() const { return coflows_checked_; }
  const std::vector<AuditSample>& series() const { return series_; }
  const std::vector<AuditViolation>& violations() const {
    return violations_;
  }

  // CSV: t0,t1,coflow,progress_bps,dominant_share,shadow_progress_bps,
  // envelope_bps (envelope = e_max · shadow_progress). Finalizes first.
  void write_series_csv(std::ostream& out);

  // One JSON object: {"e_max":…,"coflows_checked":N,"max_ratio":…,
  // "violations":[{"coflow":…,"real_cct":…,"shadow_cct":…,"ratio":…,
  // "bound":…},…]}. Finalizes first.
  void write_report_json(std::ostream& out);

 private:
  struct ShadowCoflow;

  void admit_due();
  bool step_shadow(double limit);  // one integration step; false = idle
  void check_envelope(CoflowId coflow, double real_cct);
  double shadow_p_star_at(double t);

  const Fabric& fabric_;
  AuditOptions options_;

  double e_max_ = 1.0;
  std::vector<AuditSample> series_;
  std::vector<AuditViolation> violations_;
  long long coflows_checked_ = 0;
  double max_ratio_ = 0.0;

  // Shadow DRF world. Pending coflows wait for their arrival time; active
  // ones carry per-flow remaining bits keyed by global FlowId.
  double shadow_now_ = 0.0;
  std::vector<ShadowCoflow> pending_;  // arrival-ordered queue (front next)
  std::size_t next_pending_ = 0;
  std::vector<ShadowCoflow> active_;
  std::vector<double> remaining_bits_;          // dense by FlowId
  std::map<CoflowId, double> shadow_cct_;       // finished shadow coflows
  std::map<CoflowId, double> arrivals_;         // all submitted coflows
  std::map<CoflowId, double> deferred_;         // coflow -> real F_k
  double cached_p_star_t_ = -1.0;
  double cached_p_star_ = 0.0;
  bool finalized_ = false;
};

// --- Header-only helpers shared with drivers that have their own sample
// types (sim::ProgressSample, AuditSample): anything with t0/t1/coflow/
// progress fields works, which keeps sim ↔ obs dependency-free. ----------

// CSV time series: t0,t1,coflow,progress_bps.
template <typename Sample>
void write_progress_csv(std::ostream& out,
                        const std::vector<Sample>& samples) {
  out << "t0,t1,coflow,progress_bps\n";
  for (const Sample& s : samples) {
    out << s.t0 << ',' << s.t1 << ',' << s.coflow << ',' << s.progress
        << '\n';
  }
}

// Mean |P_a − P_b| over their mean level across sample instants in
// [t0, t1] where both coflows report positive progress — 0 means perfectly
// equal progress (the Fig. 8 summary statistic).
template <typename Sample>
double relative_progress_gap(const std::vector<Sample>& samples, CoflowId a,
                             CoflowId b, double t0, double t1) {
  std::map<double, std::pair<double, double>> instants;  // t -> (pa, pb)
  for (const Sample& s : samples) {
    if (s.t0 < t0 || s.t0 > t1) continue;
    auto& slot = instants[s.t0];
    if (s.coflow == a) slot.first = s.progress;
    if (s.coflow == b) slot.second = s.progress;
  }
  double gap = 0.0;
  double level = 0.0;
  int n = 0;
  for (const auto& [t, pair] : instants) {
    if (pair.first <= 0.0 || pair.second <= 0.0) continue;
    gap += pair.first > pair.second ? pair.first - pair.second
                                    : pair.second - pair.first;
    level += 0.5 * (pair.first + pair.second);
    ++n;
  }
  return (n > 0 && level > 0.0) ? gap / level : 0.0;
}

}  // namespace ncdrf::obs
