// Metrics registry — the aggregate half of the observability layer.
//
// Counters (monotone totals), gauges (last-written values) and
// log-bucketed histograms (latency / utilization distributions with
// p50/p95/p99 export), owned by name in a registry whose JSON export is
// deterministic (names sorted, fixed key order) so metrics files diff
// cleanly between runs.
//
// Components take a `MetricsRegistry*` and look their instruments up once
// (references are stable for the registry's lifetime), so the per-event
// cost is an increment, not a map lookup. A null registry means metrics
// are off; call sites keep the cached pointers null and skip.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace ncdrf::obs {

struct Counter {
  long long value = 0;
  void inc(long long delta = 1) { value += delta; }
};

struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

// The three standard latency quantiles, computed in one bucket walk.
// Shared estimator: Histogram::quantiles() (cumulative), the timeseries
// windows (bucket deltas) and bench_serve all report through this, so
// every surface quotes the same numbers for the same samples.
struct Quantiles {
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Histogram over geometric buckets: bucket i covers
// (min_value·growth^(i-1), min_value·growth^i]; values <= min_value share
// the first bucket and values beyond the top land in an overflow bucket.
// Percentile queries interpolate geometrically inside the bucket and clamp
// to the observed min/max, so the relative error of any quantile is
// bounded by `growth` (the default tracks quantiles within ~26%, tight
// enough to rank latency regressions while storing ~200 longs regardless
// of sample count).
class Histogram {
 public:
  explicit Histogram(double min_value = 1e-9, double max_value = 1e12,
                     double growth = 1.2589254117941673);  // 10^(1/10)

  void observe(double value);

  long long count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  // p in [0, 100]; 0 on an empty histogram.
  double percentile(double p) const;
  // p50/p95/p99 of the cumulative counts (same estimator as percentile).
  Quantiles quantiles() const;
  // Guaranteed relative quantile accuracy (the bucket growth factor).
  double growth() const { return growth_; }

  // The raw bucket counts (last slot = overflow). A caller holding a
  // previous copy can difference them to get a *windowed* distribution —
  // what obs/timeseries.h does once per window.
  const std::vector<long long>& bucket_counts() const { return buckets_; }

  // Quantile of an arbitrary bucket-count vector interpreted with this
  // histogram's geometry (size must match bucket_counts()). This is the
  // percentile() estimator minus the observed-min/max clamp, which only
  // the cumulative counts can provide. 0 when the counts sum to zero.
  double quantile_from_counts(const std::vector<long long>& counts,
                              double p) const;
  Quantiles quantiles_from_counts(const std::vector<long long>& counts) const;

 private:
  std::size_t bucket_of(double value) const;

  double min_value_;
  double growth_;
  double log_growth_;
  std::vector<long long> buckets_;  // last slot = overflow
  long long count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  // Look up or create by name. Returned references stay valid for the
  // registry's lifetime (node-based map), so callers cache them.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  // As histogram() but with explicit bucket geometry on first use.
  Histogram& histogram(const std::string& name, double min_value,
                       double max_value, double growth);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  // One JSON object, newline-terminated:
  // {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
  //  max,mean,p50,p95,p99},...}} — names sorted, deterministic.
  void write_json(std::ostream& out) const;

  // Name-ordered iteration for exporters (obs/timeseries.h rollups,
  // obs/exporter.h Prometheus text). The maps are node-based, so the
  // references stay valid across concurrent instrument creation.
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ncdrf::obs
