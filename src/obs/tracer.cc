#include "obs/tracer.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <ostream>

#include "common/check.h"
#include "obs/metrics.h"

namespace ncdrf::obs {
namespace {

// Exporter schema for one kind: the event name plus labels for the args
// that are meaningful for it (nullptr = omit from "args").
struct KindInfo {
  const char* name;
  const char* a0 = nullptr;
  const char* a1 = nullptr;
  const char* d0 = nullptr;
};

const KindInfo& kind_info(EventKind kind) {
  static const KindInfo kTable[] = {
      /*kCoflowArrival=*/{"coflow_arrival", "coflow", "flows", nullptr},
      /*kFlowFinish=*/{"flow_finish", "flow", "coflow", nullptr},
      /*kCoflowFinish=*/{"coflow_finish", "coflow", nullptr, "cct_s"},
      /*kAllocate=*/{"allocate", "active_coflows", nullptr, nullptr},
      /*kNcDrfAlloc=*/{"ncdrf_alloc", "incremental", nullptr, nullptr},
      /*kCorrelationBuild=*/{"correlation_build", "coflows", nullptr,
                             nullptr},
      /*kPStarSearch=*/{"p_star_search", "bottleneck_link", nullptr,
                        "p_star_bps"},
      /*kBackfill=*/{"backfill", "rounds", nullptr, nullptr},
      /*kBackfillRound=*/{"backfill_round", "round", nullptr, nullptr},
      /*kClusterRegister=*/{"register_coflow", "coflow", "flows", nullptr},
      /*kClusterReallocate=*/{"reallocate", "rate_updates", nullptr,
                              nullptr},
      /*kClusterHeartbeat=*/{"heartbeat", "machine", nullptr, nullptr},
      /*kSlaveDown=*/{"slave_down", nullptr, nullptr, nullptr},
      /*kMasterDown=*/{"master_down", nullptr, nullptr, nullptr},
      /*kPartition=*/{"partition", nullptr, nullptr, nullptr},
      /*kLossBurst=*/{"loss_burst", nullptr, nullptr, "loss_probability"},
      /*kRecovery=*/{"recovery", "machine", nullptr, "latency_s"},
      /*kServeEpoch=*/{"serve_epoch", "admitted", "active_coflows", nullptr},
      /*kServeRatePush=*/{"serve_rate_push", "machine", nullptr,
                          "staleness_s"},
      /*kServeShed=*/{"serve_shed", "client", "count", nullptr},
      /*kServeBackpressure=*/{"serve_backpressure", "level", nullptr,
                              nullptr},
      /*kServeAdmit=*/{"serve_admit", "coflow", "trace_id", "queue_s"},
      /*kServeAllocCover=*/{"serve_alloc_cover", "coflow", "trace_id",
                            "alloc_s"},
      /*kServeFirstPush=*/{"serve_first_push", "coflow", "trace_id",
                           "total_s"},
  };
  return kTable[static_cast<std::size_t>(kind)];
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One event as a Chrome trace-event JSON object. `ts` is microseconds, as
// the format specifies. Async phases carry their instance id; instants get
// thread scope so Perfetto draws them on the track, not across the view.
void write_event_json(std::ostream& out, const TraceEvent& e) {
  const KindInfo& info = kind_info(e.kind);
  const bool async = e.phase == 'b' || e.phase == 'e';
  out << "{\"name\":\"" << info.name << "\",\"cat\":\"ncdrf\",\"ph\":\""
      << e.phase << "\",\"ts\":" << e.ts * 1e6 << ",\"pid\":0,\"tid\":0";
  if (async) out << ",\"id\":" << e.a0;
  if (e.phase == 'i') out << ",\"s\":\"t\"";
  bool first = true;
  const auto arg = [&](const char* label, auto value) {
    if (label == nullptr) return;
    out << (first ? ",\"args\":{" : ",") << '"' << label << "\":" << value;
    first = false;
  };
  if (!async) arg(info.a0, e.a0);
  arg(info.a1, e.a1);
  arg(info.d0, e.d0);
  if (!first) out << '}';
  out << '}';
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  return kind_info(kind).name;
}

Tracer::Tracer(std::size_t capacity, ClockMode mode) : mode_(mode) {
  NCDRF_CHECK(capacity > 0, "tracer capacity must be positive");
  buffer_.resize(capacity);
  if (mode_ == ClockMode::kWall) wall_epoch_ = wall_seconds();
}

double Tracer::stamp(double ts) const {
  return mode_ == ClockMode::kVirtual ? ts : wall_seconds() - wall_epoch_;
}

void Tracer::push(const TraceEvent& event) {
  buffer_[head_] = event;
  head_ = (head_ + 1) % buffer_.size();
  if (size_ < buffer_.size()) {
    ++size_;
  } else {
    ++dropped_;  // overwrote the oldest event
    if (drop_counter_ != nullptr) drop_counter_->inc();
  }
}

void Tracer::clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const std::size_t start =
      (head_ + buffer_.size() - size_) % buffer_.size();
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

void Tracer::write_chrome_json(std::ostream& out) const {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::setprecision(15);
  out << "{\"displayTimeUnit\":\"ms\",\"droppedEvents\":" << dropped_
      << ",\"traceEvents\":[";
  std::vector<TraceEvent> sorted = events();
  // Ring overflow drops the *oldest* events, so the survivors are a
  // suffix of the record stream: any 'E' whose 'B' was overwritten shows
  // up as a close with no open span. Prune those orphans (in record
  // order, before sorting) so an overflowed trace still loads.
  if (dropped_ > 0) {
    std::size_t depth = 0;
    std::size_t kept = 0;
    for (TraceEvent& e : sorted) {
      if (e.phase == 'E') {
        if (depth == 0) continue;  // orphaned close — drop it
        --depth;
      } else if (e.phase == 'B') {
        ++depth;
      }
      sorted[kept++] = e;
    }
    sorted.resize(kept);
  }
  // Time-sort the export: recording order can lag virtual time (e.g. a
  // bus message delivered on a later tick keeps its earlier deliver-time
  // stamp). The sort is stable and nested spans begin/end at one virtual
  // timestamp, so B/E nesting survives and the bytes stay deterministic.
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
  bool first = true;
  // Ring overflow gets a metadata record inside the event stream too, so
  // a viewer (which ignores unknown top-level keys) still surfaces it.
  if (dropped_ > 0) {
    const double ts = sorted.empty() ? 0.0 : sorted.front().ts;
    out << "{\"name\":\"trace_dropped_events\",\"cat\":\"ncdrf\","
        << "\"ph\":\"M\",\"ts\":" << ts * 1e6
        << ",\"pid\":0,\"tid\":0,\"args\":{\"dropped\":" << dropped_ << "}}";
    first = false;
  }
  for (const TraceEvent& e : sorted) {
    if (!first) out << ",\n";
    first = false;
    write_event_json(out, e);
  }
  out << "]}\n";
  out.flags(flags);
  out.precision(precision);
}

void Tracer::write_slice_json(std::ostream& out, double min_ts) const {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::setprecision(15);
  out << '[';
  bool first = true;
  for (const TraceEvent& e : events()) {
    if (e.ts < min_ts) continue;
    if (!first) out << ',';
    first = false;
    write_event_json(out, e);
  }
  out << ']';
  out.flags(flags);
  out.precision(precision);
}

void Tracer::write_ndjson(std::ostream& out) const {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::setprecision(15);
  for (const TraceEvent& e : events()) {
    write_event_json(out, e);
    out << '\n';
  }
  out.flags(flags);
  out.precision(precision);
}

}  // namespace ncdrf::obs
