// Sliding-window telemetry rollups — the *live* half of the metrics
// plane, next to the MetricsRegistry's run-lifetime aggregates.
//
// A Timeseries watches a MetricsRegistry and is fed once per serve epoch
// (or any monotone driver tick) with sample(now). Whenever at least
// window_s of driver time has elapsed since the open window started, the
// window closes and one TimeseriesSnapshot is appended:
//
//   * counters   — total, per-window delta, and rate (delta / span);
//   * gauges     — last-written value at close time;
//   * histograms — per-window count/sum plus p50/p95/p99 of the *window's*
//     samples, computed by differencing the histogram's bucket counts
//     against the previous close and running the shared Quantiles
//     estimator (Histogram::quantiles_from_counts) over the delta.
//
// Windows close on the driver's clock: under virtual time the snapshot
// stream is a pure function of the workload — byte-identical across runs
// (what tests/telemetry_test.cc asserts) — while wall-clock drivers get
// ordinary wall-windowed rollups. Window spans are contiguous ([t0, t1] of
// window k+1 starts at window k's t1) and sequence numbers strictly
// increase, which is the ordering contract obs/json_lint.h validates.
//
// Consumers: obs/exporter.h streams snapshots as NDJSON (tools/obs_top
// tails it), obs/flight.h embeds the retained history in diagnostics
// bundles and runs SLO burn-rate accounting over windowed p99s.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace ncdrf::obs {

struct TimeseriesOptions {
  // Minimum window span on the driver's clock. A window closes at the
  // first sample() at least this long after the window opened, so actual
  // spans are window_s rounded up to the driver's tick grid.
  double window_s = 1.0;
  // Closed windows retained (oldest evicted); bounds memory.
  std::size_t history = 128;
};

struct CounterWindow {
  long long total = 0;      // cumulative value at window close
  long long delta = 0;      // increments inside the window
  double rate_per_s = 0.0;  // delta / (t1 - t0)
};

struct HistogramWindow {
  long long count = 0;  // observations inside the window
  double sum = 0.0;     // their sum
  Quantiles q;          // windowed p50/p95/p99 (0 when count == 0)
};

// One closed window over every instrument the registry held at close
// time, name-sorted (the registry maps are ordered) — deterministic.
struct TimeseriesSnapshot {
  long long window = 0;  // strictly increasing sequence number, from 0
  double t0 = 0.0;
  double t1 = 0.0;
  std::vector<std::pair<std::string, CounterWindow>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramWindow>> histograms;
};

class Timeseries {
 public:
  // The registry must outlive the Timeseries. Instruments created after
  // construction are picked up automatically (first window sees their
  // full cumulative state as the delta).
  explicit Timeseries(const MetricsRegistry* registry,
                      TimeseriesOptions options = {});

  Timeseries(const Timeseries&) = delete;
  Timeseries& operator=(const Timeseries&) = delete;

  // Feed one driver tick at time `now` (non-decreasing across calls). The
  // first call opens window 0; later calls close the open window once its
  // span reaches window_s.
  void sample(double now);

  // Closes the open window at `now` regardless of span (end of run), so
  // the tail of the workload is never silently dropped. No-op before the
  // first sample or when the open window is empty of elapsed time.
  void flush(double now);

  const std::deque<TimeseriesSnapshot>& snapshots() const {
    return snapshots_;
  }
  // Most recent closed window; null before the first close.
  const TimeseriesSnapshot* latest() const {
    return snapshots_.empty() ? nullptr : &snapshots_.back();
  }
  long long windows_closed() const { return next_window_; }
  const TimeseriesOptions& options() const { return options_; }

 private:
  struct HistogramState {
    std::vector<long long> buckets;
    long long count = 0;
    double sum = 0.0;
  };

  void close_window(double t1);

  const MetricsRegistry* registry_;
  const TimeseriesOptions options_;
  bool started_ = false;
  double window_start_ = 0.0;
  long long next_window_ = 0;
  std::deque<TimeseriesSnapshot> snapshots_;
  // Cumulative state at the last close, per instrument name.
  std::map<std::string, long long> counter_prev_;
  std::map<std::string, HistogramState> histogram_prev_;
};

}  // namespace ncdrf::obs
