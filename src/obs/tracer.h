// Deterministic event tracer — the timeline half of the observability
// layer (src/obs/).
//
// A Tracer is a fixed-capacity ring buffer of typed, POD trace events.
// Components record instants, nested begin/end spans (allocate phases,
// reallocations) and async spans (a slave's crash→restart downtime, a
// partition's start→heal window) against either the driver's *virtual*
// clock — the simulator's event time or the deployment's tick time, so a
// trace is bit-identical across runs — or, for a live path with no virtual
// clock, a steady_clock started at tracer construction.
//
// Exports:
//   * Chrome trace-event JSON ({"traceEvents":[...]}), loadable directly
//     in Perfetto / chrome://tracing;
//   * NDJSON (one event object per line) for grep/jq-style pipelines.
//
// Hot paths never call the Tracer directly: they go through the
// NCDRF_TRACE_* macros below, which compile to nothing when the build sets
// NCDRF_TRACE_ENABLED=0 (CMake option NCDRF_TRACE=OFF) — a tracing-
// disabled build carries zero tracing work in the per-event loop.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace ncdrf::obs {

struct Counter;

// Every event kind the system emits. The exporter maps each kind to a
// stable name and argument labels (see event_kind_name / tracer.cc), so
// adding a kind means extending one table, not touching call sites.
enum class EventKind : std::uint8_t {
  // Simulator / scheduler events.
  kCoflowArrival,      // instant: a0=coflow, a1=flows
  kFlowFinish,         // instant: a0=flow, a1=coflow
  kCoflowFinish,       // instant: a0=coflow, d0=cct_s
  kAllocate,           // span: one scheduler allocate(); a0=active_coflows
  kNcDrfAlloc,         // span: NC-DRF core; a0=1 incremental, 0 rebuild
  kCorrelationBuild,   // span: from-scratch count-vector rebuild
  kPStarSearch,        // span: Eq. 5 bottleneck search; a0=link, d0=p_star
  kBackfill,           // span: work-conservation stage; a0=rounds
  kBackfillRound,      // instant: a0=round index
  // Cluster events.
  kClusterRegister,    // instant: a0=coflow, a1=flows
  kClusterReallocate,  // span: master reallocation; a0=rate_updates
  kClusterHeartbeat,   // instant: a0=machine
  kSlaveDown,          // async span (id=machine): crash→restart
  kMasterDown,         // async span (id=0): crash→restart
  kPartition,          // async span (id=machine): start→heal
  kLossBurst,          // async span (id=0): d0=loss_probability
  kRecovery,           // instant: a0=machine, d0=latency_s
  // Serving front-end events (src/serve/).
  kServeEpoch,         // span: one epoch; a0=admitted, a1=active_coflows
  kServeRatePush,      // instant: a0=machine, d0=staleness_s
  kServeShed,          // instant: a0=client, a1=count
  kServeBackpressure,  // instant: a0=level (0 ok, 1 slowdown, 2 shed)
  // Causal-latency stage marks (trace id stamped at submission, carried
  // through RegisterCoflowMsg/RateUpdateMsg — see docs/OBSERVABILITY.md).
  kServeAdmit,         // instant: a0=coflow, a1=trace_id, d0=queue_s
  kServeAllocCover,    // instant: a0=coflow, a1=trace_id, d0=alloc_s
  kServeFirstPush,     // instant: a0=coflow, a1=trace_id, d0=total_s
};

// Stable exporter name for a kind (e.g. "allocate", "slave_down").
const char* event_kind_name(EventKind kind);

// Chrome trace-event phases used by this tracer: 'B'/'E' nested spans,
// 'i' instants, 'b'/'e' async spans (args carry the async id in a0).
struct TraceEvent {
  double ts = 0.0;        // seconds (virtual or wall since construction)
  std::int64_t a0 = 0;    // first integer argument (or async span id)
  std::int64_t a1 = 0;    // second integer argument
  double d0 = 0.0;        // double argument
  EventKind kind = EventKind::kCoflowArrival;
  char phase = 'i';
};

class Tracer {
 public:
  enum class ClockMode {
    kVirtual,  // callers pass timestamps (deterministic traces)
    kWall,     // timestamps read from steady_clock (live paths)
  };

  // `capacity` bounds memory: once full, the *oldest* events are
  // overwritten (the tail of a run is what a postmortem needs) and
  // dropped_events() counts the loss.
  explicit Tracer(std::size_t capacity = 1 << 16,
                  ClockMode mode = ClockMode::kVirtual);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void instant(EventKind kind, double ts, std::int64_t a0 = 0,
               std::int64_t a1 = 0, double d0 = 0.0) {
    push(TraceEvent{stamp(ts), a0, a1, d0, kind, 'i'});
  }
  void begin(EventKind kind, double ts, std::int64_t a0 = 0,
             std::int64_t a1 = 0, double d0 = 0.0) {
    push(TraceEvent{stamp(ts), a0, a1, d0, kind, 'B'});
  }
  void end(EventKind kind, double ts, std::int64_t a0 = 0,
           std::int64_t a1 = 0, double d0 = 0.0) {
    push(TraceEvent{stamp(ts), a0, a1, d0, kind, 'E'});
  }
  // Async spans: `id` distinguishes concurrent instances of one kind
  // (machine id for slave_down/partition). Rendered as their own tracks.
  void async_begin(EventKind kind, double ts, std::int64_t id,
                   double d0 = 0.0) {
    push(TraceEvent{stamp(ts), id, 0, d0, kind, 'b'});
  }
  void async_end(EventKind kind, double ts, std::int64_t id,
                 double d0 = 0.0) {
    push(TraceEvent{stamp(ts), id, 0, d0, kind, 'e'});
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return buffer_.size(); }
  // Events lost to ring overflow (oldest-first overwrite).
  long long dropped_events() const { return dropped_; }
  // Mirrors every future drop into a MetricsRegistry counter (typically
  // "trace.dropped_events"), so ring overflow surfaces in the metrics /
  // timeseries plane instead of only behind the accessor above. Null
  // unbinds. The counter must outlive the tracer or the binding.
  void bind_drop_counter(Counter* counter) { drop_counter_ = counter; }
  ClockMode clock_mode() const { return mode_; }
  void clear();

  // Events in record order (oldest surviving first).
  std::vector<TraceEvent> events() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} — Perfetto-loadable.
  // Deterministic formatting: byte-identical for identical event streams.
  void write_chrome_json(std::ostream& out) const;

  // One JSON object per line, same fields as the Chrome export.
  void write_ndjson(std::ostream& out) const;

  // The surviving events with ts >= min_ts as a JSON *array* (record
  // order, per-event schema of the NDJSON lines). The flight recorder
  // (obs/flight.h) embeds this last-N-seconds slice in its bundles; a
  // slice may cut spans, so consumers must not assume B/E balance.
  void write_slice_json(std::ostream& out, double min_ts) const;

 private:
  double stamp(double ts) const;
  void push(const TraceEvent& event);

  std::vector<TraceEvent> buffer_;  // fixed-size ring
  std::size_t head_ = 0;            // next write slot
  std::size_t size_ = 0;            // live events (<= capacity)
  long long dropped_ = 0;
  Counter* drop_counter_ = nullptr;
  ClockMode mode_;
  double wall_epoch_ = 0.0;  // steady_clock seconds at construction
};

// RAII nested span: begin at construction, end at destruction, both at the
// timestamp given (virtual mode) or at wall time (wall mode). Null tracer
// = no-op, so call sites need no branches.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, EventKind kind, double ts, std::int64_t a0 = 0,
             std::int64_t a1 = 0, double d0 = 0.0)
      : tracer_(tracer), kind_(kind), ts_(ts) {
    if (tracer_ != nullptr) tracer_->begin(kind, ts, a0, a1, d0);
  }
  ~ScopedSpan() {
    if (tracer_ != nullptr) tracer_->end(kind_, ts_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  EventKind kind_;
  double ts_;
};

}  // namespace ncdrf::obs

// Compile-time switch: CMake option NCDRF_TRACE=OFF defines
// NCDRF_TRACE_ENABLED=0 and every macro below vanishes — no branch, no
// ring-buffer write, no obs call in the hot path.
#ifndef NCDRF_TRACE_ENABLED
#define NCDRF_TRACE_ENABLED 1
#endif

#if NCDRF_TRACE_ENABLED

#define NCDRF_OBS_CONCAT_(a, b) a##b
#define NCDRF_OBS_CONCAT(a, b) NCDRF_OBS_CONCAT_(a, b)

// Declares an RAII span covering the rest of the enclosing scope.
#define NCDRF_TRACE_SPAN(tracer, ...) \
  ::ncdrf::obs::ScopedSpan NCDRF_OBS_CONCAT(ncdrf_obs_span_, \
                                            __LINE__)((tracer), __VA_ARGS__)
#define NCDRF_TRACE_INSTANT(tracer, ...)                      \
  do {                                                        \
    if ((tracer) != nullptr) (tracer)->instant(__VA_ARGS__);  \
  } while (false)
#define NCDRF_TRACE_ASYNC_BEGIN(tracer, ...)                      \
  do {                                                            \
    if ((tracer) != nullptr) (tracer)->async_begin(__VA_ARGS__);  \
  } while (false)
#define NCDRF_TRACE_ASYNC_END(tracer, ...)                      \
  do {                                                          \
    if ((tracer) != nullptr) (tracer)->async_end(__VA_ARGS__);  \
  } while (false)

#else  // !NCDRF_TRACE_ENABLED

#define NCDRF_TRACE_SPAN(tracer, ...) \
  do {                                \
  } while (false)
#define NCDRF_TRACE_INSTANT(tracer, ...) \
  do {                                   \
  } while (false)
#define NCDRF_TRACE_ASYNC_BEGIN(tracer, ...) \
  do {                                       \
  } while (false)
#define NCDRF_TRACE_ASYNC_END(tracer, ...) \
  do {                                     \
  } while (false)

#endif  // NCDRF_TRACE_ENABLED
