#include "obs/flight.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "obs/audit.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/tracer.h"

namespace ncdrf::obs {
namespace {

// Minimal JSON string escaping for trigger details (our own strings never
// need \u escapes beyond control characters).
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightOptions options)
    : options_(std::move(options)) {
  NCDRF_CHECK(options_.cooldown_s >= 0.0,
              "flight cooldown must be non-negative");
  NCDRF_CHECK(options_.trace_slice_s >= 0.0,
              "flight trace slice must be non-negative");
  NCDRF_CHECK(options_.slo_windows >= 1, "flight slo_windows must be >= 1");
  NCDRF_CHECK(options_.slo_burn_rate > 0.0 && options_.slo_burn_rate <= 1.0,
              "flight slo_burn_rate must be in (0, 1]");
}

void FlightRecorder::attach(const Tracer* tracer,
                            const MetricsRegistry* metrics,
                            const Timeseries* timeseries) {
  tracer_ = tracer;
  metrics_ = metrics;
  timeseries_ = timeseries;
}

void FlightRecorder::watch_auditor(const FairnessAuditor* auditor) {
  auditor_ = auditor;
}

void FlightRecorder::set_config_json(std::string config_json) {
  config_json_ = config_json.empty() ? "{}" : std::move(config_json);
}

void FlightRecorder::observe_epoch(double now, const EpochVitals& vitals) {
  if (options_.trigger_shed && vitals.backpressure_level >= 2 &&
      prev_level_ < 2) {
    std::ostringstream detail;
    detail << "backpressure entered kShed (backlog " << vitals.backlog
           << ", shed " << vitals.shed_delta << " this epoch)";
    fire(now, "backpressure_shed", detail.str(),
         static_cast<double>(vitals.shed_delta));
  }
  prev_level_ = vitals.backpressure_level;

  if (options_.staleness_budget_s >= 0.0 &&
      vitals.staleness_s > options_.staleness_budget_s) {
    std::ostringstream detail;
    detail << "push staleness " << vitals.staleness_s << "s over budget "
           << options_.staleness_budget_s << 's';
    fire(now, "staleness_breach", detail.str(), vitals.staleness_s);
  }

  if (options_.trigger_envelope && auditor_ != nullptr) {
    const std::size_t seen = auditor_->violations().size();
    if (seen > violations_seen_) {
      const AuditViolation& v = auditor_->violations().back();
      std::ostringstream detail;
      detail << "Theorem-1 envelope violation: coflow " << v.coflow
             << " ratio " << v.ratio << " over bound " << v.bound;
      fire(now, "envelope_violation", detail.str(), v.ratio);
    }
    violations_seen_ = seen;
  }

  evaluate_slo(now);
}

void FlightRecorder::evaluate_slo(double now) {
  if (timeseries_ == nullptr || options_.slo_histogram.empty() ||
      options_.slo_p99_s < 0.0) {
    return;
  }
  for (const TimeseriesSnapshot& snap : timeseries_->snapshots()) {
    if (snap.window <= last_slo_window_) continue;
    last_slo_window_ = snap.window;
    const auto it = std::find_if(
        snap.histograms.begin(), snap.histograms.end(),
        [&](const auto& entry) { return entry.first == options_.slo_histogram; });
    if (it == snap.histograms.end()) continue;
    const HistogramWindow& w = it->second;
    // An idle window (no samples) cannot breach: burn-rate measures the
    // served traffic's tail, not the absence of traffic.
    slo_breaches_.push_back(w.count > 0 && w.q.p99 > options_.slo_p99_s);
    while (slo_breaches_.size() >
           static_cast<std::size_t>(options_.slo_windows)) {
      slo_breaches_.pop_front();
    }
    if (slo_breaches_.size() <
        static_cast<std::size_t>(options_.slo_windows)) {
      continue;
    }
    const auto breaches = static_cast<double>(
        std::count(slo_breaches_.begin(), slo_breaches_.end(), true));
    const double burn = breaches / static_cast<double>(slo_breaches_.size());
    if (burn >= options_.slo_burn_rate) {
      std::ostringstream detail;
      detail << options_.slo_histogram << " windowed p99 over "
             << options_.slo_p99_s << "s in " << breaches << '/'
             << options_.slo_windows << " windows";
      if (fire(now, "slo_burn", detail.str(), burn)) {
        slo_breaches_.clear();  // restart accounting after a fire
      }
    }
  }
}

bool FlightRecorder::fire(double now, const std::string& kind,
                          const std::string& detail, double value) {
  const auto it = last_fire_.find(kind);
  if (it != last_fire_.end() && now - it->second < options_.cooldown_s) {
    ++triggers_suppressed_;
    return false;
  }
  last_fire_[kind] = now;
  last_bundle_json_ = build_bundle(now, kind, detail, value);
  if (!options_.dir.empty()) {
    std::ostringstream name;
    name << options_.dir << "/flight-" << std::setfill('0') << std::setw(3)
         << seq_ << '-' << kind << ".json";
    std::ofstream out(name.str());
    NCDRF_CHECK(out.good(), "cannot write flight bundle " + name.str());
    out << last_bundle_json_;
    bundle_paths_.push_back(name.str());
  }
  ++seq_;
  ++bundles_written_;
  return true;
}

std::string FlightRecorder::build_bundle(double now, const std::string& kind,
                                         const std::string& detail,
                                         double value) {
  std::ostringstream out;
  out << std::setprecision(15);
  out << "{\"bundle\":\"ncdrf.flight\",\"seq\":" << seq_
      << ",\"trigger\":{\"kind\":\"" << escape(kind) << "\",\"time\":" << now
      << ",\"value\":" << value << ",\"detail\":\"" << escape(detail)
      << "\"},\"config\":" << config_json_ << ",\"metrics\":";
  if (metrics_ != nullptr) {
    std::ostringstream metrics;
    metrics_->write_json(metrics);
    std::string text = metrics.str();
    while (!text.empty() && text.back() == '\n') text.pop_back();
    out << text;
  } else {
    out << "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
  }
  out << ",\"timeseries\":[";
  if (timeseries_ != nullptr) {
    bool first = true;
    for (const TimeseriesSnapshot& snap : timeseries_->snapshots()) {
      if (!first) out << ',';
      first = false;
      std::ostringstream line;
      write_snapshot_json(line, snap);
      std::string text = line.str();
      while (!text.empty() && text.back() == '\n') text.pop_back();
      out << text;
    }
  }
  out << "],\"trace\":{\"dropped\":"
      << (tracer_ != nullptr ? tracer_->dropped_events() : 0)
      << ",\"events\":";
  if (tracer_ != nullptr) {
    tracer_->write_slice_json(out, now - options_.trace_slice_s);
  } else {
    out << "[]";
  }
  out << "}}\n";
  return out.str();
}

}  // namespace ncdrf::obs
