#include "obs/timeseries.h"

#include "common/check.h"

namespace ncdrf::obs {

Timeseries::Timeseries(const MetricsRegistry* registry,
                       TimeseriesOptions options)
    : registry_(registry), options_(options) {
  NCDRF_CHECK(registry != nullptr, "timeseries needs a metrics registry");
  NCDRF_CHECK(options.window_s > 0.0,
              "timeseries window length must be positive");
  NCDRF_CHECK(options.history >= 1, "timeseries history must be >= 1");
}

void Timeseries::sample(double now) {
  if (!started_) {
    started_ = true;
    window_start_ = now;
    return;
  }
  NCDRF_CHECK(now >= window_start_,
              "timeseries samples must be non-decreasing in time");
  if (now - window_start_ >= options_.window_s) close_window(now);
}

void Timeseries::flush(double now) {
  if (!started_ || now <= window_start_) return;
  close_window(now);
}

void Timeseries::close_window(double t1) {
  TimeseriesSnapshot snap;
  snap.window = next_window_++;
  snap.t0 = window_start_;
  snap.t1 = t1;
  const double span = t1 - snap.t0;

  snap.counters.reserve(registry_->counters().size());
  for (const auto& [name, counter] : registry_->counters()) {
    CounterWindow w;
    w.total = counter.value;
    w.delta = counter.value - counter_prev_[name];
    w.rate_per_s = span > 0.0 ? static_cast<double>(w.delta) / span : 0.0;
    counter_prev_[name] = counter.value;
    snap.counters.emplace_back(name, w);
  }

  snap.gauges.reserve(registry_->gauges().size());
  for (const auto& [name, gauge] : registry_->gauges()) {
    snap.gauges.emplace_back(name, gauge.value);
  }

  snap.histograms.reserve(registry_->histograms().size());
  for (const auto& [name, hist] : registry_->histograms()) {
    HistogramState& prev = histogram_prev_[name];
    const std::vector<long long>& cumulative = hist.bucket_counts();
    // First window for this histogram: the previous state is all-zero.
    prev.buckets.resize(cumulative.size(), 0);
    std::vector<long long> delta(cumulative.size());
    for (std::size_t i = 0; i < cumulative.size(); ++i) {
      delta[i] = cumulative[i] - prev.buckets[i];
    }
    HistogramWindow w;
    w.count = hist.count() - prev.count;
    w.sum = hist.sum() - prev.sum;
    if (w.count > 0) w.q = hist.quantiles_from_counts(delta);
    prev.buckets = cumulative;
    prev.count = hist.count();
    prev.sum = hist.sum();
    snap.histograms.emplace_back(name, w);
  }

  snapshots_.push_back(std::move(snap));
  while (snapshots_.size() > options_.history) snapshots_.pop_front();
  window_start_ = t1;
}

}  // namespace ncdrf::obs
