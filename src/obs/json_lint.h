// Schema validators for the observability layer's JSON artifacts.
//
// The exporters in tracer/metrics emit JSON by hand (no JSON library in
// the image), so CI needs an independent check that the artifacts are
// well-formed and match the schema downstream tools expect — a trace that
// Perfetto silently refuses to load is worse than a failing test. Each
// validator parses the full text with a self-contained JSON parser and
// then checks the schema structurally:
//
//   * Chrome trace: top-level object with a "traceEvents" array; every
//     event has name/cat/ph/ts/pid/tid with the right types, a known
//     phase, ids on async phases, scopes on instants — and B/E duration
//     events balance like parentheses.
//   * metrics: "counters"/"gauges"/"histograms" objects; histogram
//     entries carry count/sum/min/max/mean/p50/p95/p99 numbers with
//     ordered quantiles.
//   * NDJSON: every non-empty line is one standalone JSON object.
//   * timeseries NDJSON: every line a snapshot (obs/exporter.h) with
//     strictly increasing window numbers and ordered, gap-free spans —
//     a truncated or reordered stream is rejected.
//   * flight bundle: the obs/flight.h diagnostics bundle — trigger
//     provenance, config, an embedded metrics object (checked against
//     the metrics schema), an ordered timeseries array, and a trace
//     slice (field-checked per event; slices may cut spans, so B/E
//     balance is *not* required, unlike full Chrome traces).
//
// Validators return "" on success or a one-line human-readable error.
// Used by tests/obs_test.cc and by tools/obs_validate (the CI gate).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace ncdrf::obs {

// Any JSON document (syntax only).
std::string validate_json(const std::string& text);

// Chrome trace-event JSON object format (what Tracer::write_chrome_json
// emits and chrome://tracing / Perfetto load).
std::string validate_chrome_trace_json(const std::string& text);

// MetricsRegistry::write_json schema.
std::string validate_metrics_json(const std::string& text);

// One JSON object per non-empty line (Tracer::write_ndjson).
std::string validate_ndjson(const std::string& text);

// Timeseries snapshot NDJSON (obs/exporter.h SnapshotStream). Also fails
// on a final line missing its newline — an append-only stream that was
// truncated mid-write.
std::string validate_timeseries_ndjson(const std::string& text);

// FlightRecorder diagnostics bundle (obs/flight.h).
std::string validate_flight_bundle_json(const std::string& text);

// bench_gaming --json report (bench/bench_gaming.cc): benchmark tag plus
// a rows array whose cells carry the full incentive-metric schema
// tools/bench_gaming_report.py gates on.
std::string validate_gaming_json(const std::string& text);

// --- Parsed snapshot view (tools/obs_top) --------------------------------
// One timeseries NDJSON line decoded into flat name/value rows, in the
// line's (name-sorted) order. Numbers only — obs_top renders, it doesn't
// aggregate.
struct SnapshotRow {
  double window = 0.0;
  double t0 = 0.0;
  double t1 = 0.0;
  // counter name -> {total, delta, rate_per_s}
  std::vector<std::pair<std::string, std::vector<double>>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  // histogram name -> {count, sum, p50, p95, p99}
  std::vector<std::pair<std::string, std::vector<double>>> histograms;
};

// Parses one snapshot line into `out`; returns "" on success or the
// schema/syntax error.
std::string parse_timeseries_line(const std::string& line, SnapshotRow* out);

}  // namespace ncdrf::obs
