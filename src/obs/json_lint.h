// Schema validators for the observability layer's JSON artifacts.
//
// The exporters in tracer/metrics emit JSON by hand (no JSON library in
// the image), so CI needs an independent check that the artifacts are
// well-formed and match the schema downstream tools expect — a trace that
// Perfetto silently refuses to load is worse than a failing test. Each
// validator parses the full text with a self-contained JSON parser and
// then checks the schema structurally:
//
//   * Chrome trace: top-level object with a "traceEvents" array; every
//     event has name/cat/ph/ts/pid/tid with the right types, a known
//     phase, ids on async phases, scopes on instants — and B/E duration
//     events balance like parentheses.
//   * metrics: "counters"/"gauges"/"histograms" objects; histogram
//     entries carry count/sum/min/max/mean/p50/p95/p99 numbers with
//     ordered quantiles.
//   * NDJSON: every non-empty line is one standalone JSON object.
//
// Validators return "" on success or a one-line human-readable error.
// Used by tests/obs_test.cc and by tools/obs_validate (the CI gate).
#pragma once

#include <string>

namespace ncdrf::obs {

// Any JSON document (syntax only).
std::string validate_json(const std::string& text);

// Chrome trace-event JSON object format (what Tracer::write_chrome_json
// emits and chrome://tracing / Perfetto load).
std::string validate_chrome_trace_json(const std::string& text);

// MetricsRegistry::write_json schema.
std::string validate_metrics_json(const std::string& text);

// One JSON object per non-empty line (Tracer::write_ndjson).
std::string validate_ndjson(const std::string& text);

}  // namespace ncdrf::obs
