#include "obs/exporter.h"

#include <cctype>
#include <iomanip>
#include <ostream>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ncdrf::obs {
namespace {

// Prometheus metric-name charset: [a-zA-Z_:][a-zA-Z0-9_:]*. Everything
// else (our '.' separators in particular) maps to '_'.
std::string sanitize_name(const std::string& prefix, const std::string& name) {
  std::string out = prefix;
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void write_prometheus_text(std::ostream& out, const MetricsRegistry& registry,
                           const std::string& prefix) {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::setprecision(15);
  for (const auto& [name, counter] : registry.counters()) {
    const std::string metric = sanitize_name(prefix, name) + "_total";
    out << "# TYPE " << metric << " counter\n"
        << metric << ' ' << counter.value << '\n';
  }
  for (const auto& [name, gauge] : registry.gauges()) {
    const std::string metric = sanitize_name(prefix, name);
    out << "# TYPE " << metric << " gauge\n"
        << metric << ' ' << gauge.value << '\n';
  }
  for (const auto& [name, hist] : registry.histograms()) {
    const std::string metric = sanitize_name(prefix, name);
    const Quantiles q = hist.quantiles();
    out << "# TYPE " << metric << " summary\n"
        << metric << "{quantile=\"0.5\"} " << q.p50 << '\n'
        << metric << "{quantile=\"0.95\"} " << q.p95 << '\n'
        << metric << "{quantile=\"0.99\"} " << q.p99 << '\n'
        << metric << "_sum " << hist.sum() << '\n'
        << metric << "_count " << hist.count() << '\n';
  }
  out.flags(flags);
  out.precision(precision);
}

void write_snapshot_json(std::ostream& out, const TimeseriesSnapshot& snap) {
  const auto flags = out.flags();
  const auto precision = out.precision();
  out << std::setprecision(15);
  out << "{\"window\":" << snap.window << ",\"t0\":" << snap.t0
      << ",\"t1\":" << snap.t1 << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, w] : snap.counters) {
    out << (first ? "" : ",") << '"' << name << "\":{\"total\":" << w.total
        << ",\"delta\":" << w.delta << ",\"rate_per_s\":" << w.rate_per_s
        << '}';
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out << (first ? "" : ",") << '"' << name << "\":" << value;
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, w] : snap.histograms) {
    out << (first ? "" : ",") << '"' << name << "\":{\"count\":" << w.count
        << ",\"sum\":" << w.sum << ",\"p50\":" << w.q.p50
        << ",\"p95\":" << w.q.p95 << ",\"p99\":" << w.q.p99 << '}';
    first = false;
  }
  out << "}}\n";
  out.flags(flags);
  out.precision(precision);
}

long long SnapshotStream::poll(const Timeseries& timeseries) {
  long long written = 0;
  for (const TimeseriesSnapshot& snap : timeseries.snapshots()) {
    if (snap.window <= last_window_) continue;
    write_snapshot_json(out_, snap);
    last_window_ = snap.window;
    ++written;
  }
  windows_written_ += written;
  return written;
}

}  // namespace ncdrf::obs
