// FlightRecorder: armed triggers + diagnostics bundles for the serving
// stack — the "why did that happen" half of the telemetry plane.
//
// A FlightRecorder is attached to the run's Tracer / MetricsRegistry /
// Timeseries (and optionally a FairnessAuditor) and fed once per serve
// epoch with the epoch's vitals. Four triggers can be armed:
//
//   * backpressure_shed   — the published level *enters* kShed
//     (edge-triggered: a sustained shed regime fires once per entry);
//   * staleness_breach    — the epoch's observed push staleness exceeds
//     the configured budget;
//   * envelope_violation  — the watched FairnessAuditor reports a new
//     Theorem-1 envelope violation;
//   * slo_burn            — the windowed p99 of one timeseries histogram
//     exceeded the SLO threshold in at least slo_burn_rate of the last
//     slo_windows closed windows (burn-rate accounting: a single noisy
//     window does not fire, a sustained burn does).
//
// On fire, the recorder dumps one diagnostics bundle: trigger provenance,
// the ServeFront/Master config, the full metrics registry, the retained
// timeseries snapshots, and the last trace_slice_s seconds of trace
// events. A per-trigger-kind cooldown turns a storm into one bundle
// (suppressed fires are counted). Bundles are plain JSON, written to
// options.dir as flight-<seq>-<kind>.json and kept in memory
// (last_bundle_json) — schema in docs/OBSERVABILITY.md, validated by
// obs/json_lint.h's validate_flight_bundle_json.
//
// Under virtual time every input is deterministic, so bundle bytes are a
// pure function of the workload (asserted in tests/telemetry_test.cc).
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

namespace ncdrf::obs {

class FairnessAuditor;
class MetricsRegistry;
class Timeseries;
class Tracer;

struct FlightOptions {
  // Bundle output directory; empty keeps bundles in memory only
  // (last_bundle_json still updates — what the bench floor cell uses).
  std::string dir;
  // Minimum time between two fires of the *same* trigger kind; fires
  // inside the cooldown are suppressed (counted, no bundle).
  double cooldown_s = 5.0;
  // Trace slice embedded in a bundle: events from [fire − slice, fire].
  double trace_slice_s = 5.0;

  // --- Trigger arming (all disarmed by default) --------------------------
  bool trigger_shed = false;
  double staleness_budget_s = -1.0;  // < 0 disarms the staleness trigger
  bool trigger_envelope = false;     // needs watch_auditor()
  // SLO trigger: watches the named histogram's windowed p99 in the
  // attached Timeseries. Disarmed while the name is empty or the
  // threshold is negative.
  std::string slo_histogram;
  double slo_p99_s = -1.0;
  int slo_windows = 8;        // burn-accounting horizon (closed windows)
  double slo_burn_rate = 0.5; // breach fraction that fires, in (0, 1]
};

// Per-epoch inputs the serving front-end reports (serve/server.cc fills
// this at the end of every step_epoch).
struct EpochVitals {
  int backpressure_level = 0;  // serve::Backpressure as int (2 = kShed)
  long long shed_delta = 0;    // submissions shed this epoch
  double staleness_s = 0.0;    // max observed push staleness this epoch
  double backlog = 0.0;
  double active_coflows = 0.0;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightOptions options = {});

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Data sources embedded in bundles; any may be null (that section is
  // empty). All must outlive the recorder.
  void attach(const Tracer* tracer, const MetricsRegistry* metrics,
              const Timeseries* timeseries);
  void watch_auditor(const FairnessAuditor* auditor);
  // Config provenance embedded verbatim in every bundle; must be a valid
  // JSON value (ServeFront::config_json()).
  void set_config_json(std::string config_json);

  // Evaluates every armed trigger against this epoch's vitals (called
  // once per epoch, `now` non-decreasing).
  void observe_epoch(double now, const EpochVitals& vitals);

  // Manual trigger with the same cooldown bookkeeping — drivers can wire
  // their own conditions (and tests exercise cooldowns directly). Returns
  // true when a bundle was produced, false when suppressed.
  bool fire(double now, const std::string& kind, const std::string& detail,
            double value = 0.0);

  long long bundles_written() const { return bundles_written_; }
  long long triggers_suppressed() const { return triggers_suppressed_; }
  const std::vector<std::string>& bundle_paths() const {
    return bundle_paths_;
  }
  // The most recent bundle's bytes ("" before the first fire).
  const std::string& last_bundle_json() const { return last_bundle_json_; }
  const FlightOptions& options() const { return options_; }

 private:
  std::string build_bundle(double now, const std::string& kind,
                           const std::string& detail, double value);
  void evaluate_slo(double now);

  const FlightOptions options_;
  const Tracer* tracer_ = nullptr;
  const MetricsRegistry* metrics_ = nullptr;
  const Timeseries* timeseries_ = nullptr;
  const FairnessAuditor* auditor_ = nullptr;
  std::string config_json_ = "{}";

  int prev_level_ = 0;
  std::size_t violations_seen_ = 0;
  long long last_slo_window_ = -1;
  std::deque<bool> slo_breaches_;  // newest last, <= slo_windows entries

  std::map<std::string, double> last_fire_;  // per-kind cooldown clock
  long long seq_ = 0;
  long long bundles_written_ = 0;
  long long triggers_suppressed_ = 0;
  std::vector<std::string> bundle_paths_;
  std::string last_bundle_json_;
};

}  // namespace ncdrf::obs
