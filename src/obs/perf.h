// Scheduler performance counters — the allocation hot path's own plain-
// data telemetry (moved here from metrics/ when src/obs/ became the
// observability layer; the JSON shape is unchanged plus the backfill
// counters).
//
// The online loop recomputes the allocation on every coflow event, so
// allocation cost bounds how fast a cluster can churn coflows. These
// counters separate the two cost regimes of the incremental NC-DRF engine
// (full snapshot rescans vs O(links touched) delta updates), split out the
// backfilling stage (a full extra pass over the active flows per
// allocate), and accumulate wall-clock time inside allocate() via
// std::chrono::steady_clock — cheap enough to stay on in production
// builds (two clock reads per allocate).
//
// The struct is plain data: schedulers own one, drivers and benches read
// it, run_sweep aggregates per-cell copies with operator+=, and
// metrics/export.cc serializes it as JSON for the perf-trajectory
// artifacts (BENCH_*.json). merge_sched_perf() folds one into a
// MetricsRegistry so the registry export subsumes the ad-hoc perf JSON.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace ncdrf {

struct SchedPerf {
  // allocate() invocations, split by how the per-coflow state was obtained.
  long long allocate_calls = 0;
  long long incremental_allocs = 0;  // served from event-maintained state
  long long full_rebuilds = 0;       // required an O(K·(F+L)) snapshot rescan

  // Delta notifications delivered by an event-driven driver.
  long long arrival_events = 0;
  long long flow_finish_events = 0;
  long long departure_events = 0;

  // Per-link state updates applied by delta notifications — the work the
  // incremental engine does *instead of* full rescans.
  long long links_touched = 0;

  // Debug cross-checks (incremental state vs full recompute) that ran.
  long long consistency_checks = 0;

  // Work-conservation stage: rounds actually executed (a round that finds
  // no spare capacity is not counted) and the wall-clock they took.
  long long backfill_rounds = 0;
  double backfill_seconds = 0.0;

  // Total wall-clock spent inside allocate().
  double allocate_seconds = 0.0;

  // Sharded-path accounting (alloc/shard.h). One "region" is one parallel
  // dispatch over the shard pool; busy is the summed thread-CPU of every
  // shard task and critical is the per-region maximum summed over regions
  // — the modeled parallel wall-clock of the shard work, independent of
  // how many cores the host actually has. bench_scale gates its speedup
  // floor on serial CPU + critical, so the guard holds on single-core CI
  // runners too.
  long long shard_regions = 0;
  double shard_busy_seconds = 0.0;
  double shard_critical_seconds = 0.0;

  long long events() const {
    return arrival_events + flow_finish_events + departure_events;
  }

  void reset() { *this = SchedPerf{}; }
  SchedPerf& operator+=(const SchedPerf& other);
};

// Compact single-object JSON with one key per counter (deterministic key
// order, so outputs diff cleanly between runs).
std::string to_json(const SchedPerf& perf);

// Folds the counters into `registry` as "<prefix><counter>" counters and
// gauges (seconds totals become gauges) — the bridge that lets the
// registry's JSON export subsume the ad-hoc SchedPerf JSON.
void merge_sched_perf(obs::MetricsRegistry& registry, const SchedPerf& perf,
                      const std::string& prefix = "sched.");

// RAII accumulator for SchedPerf::allocate_seconds; optionally feeds the
// same duration into a latency histogram (obs::MetricsRegistry).
class AllocateTimer {
 public:
  explicit AllocateTimer(SchedPerf& perf, obs::Histogram* latency = nullptr)
      : perf_(perf),
        latency_(latency),
        start_(std::chrono::steady_clock::now()) {}
  ~AllocateTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    perf_.allocate_seconds += seconds;
    if (latency_ != nullptr) latency_->observe(seconds);
  }

  AllocateTimer(const AllocateTimer&) = delete;
  AllocateTimer& operator=(const AllocateTimer&) = delete;

 private:
  SchedPerf& perf_;
  obs::Histogram* latency_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ncdrf
