#include "obs/perf.h"

#include <sstream>

namespace ncdrf {

SchedPerf& SchedPerf::operator+=(const SchedPerf& other) {
  allocate_calls += other.allocate_calls;
  incremental_allocs += other.incremental_allocs;
  full_rebuilds += other.full_rebuilds;
  arrival_events += other.arrival_events;
  flow_finish_events += other.flow_finish_events;
  departure_events += other.departure_events;
  links_touched += other.links_touched;
  consistency_checks += other.consistency_checks;
  backfill_rounds += other.backfill_rounds;
  backfill_seconds += other.backfill_seconds;
  allocate_seconds += other.allocate_seconds;
  shard_regions += other.shard_regions;
  shard_busy_seconds += other.shard_busy_seconds;
  shard_critical_seconds += other.shard_critical_seconds;
  return *this;
}

std::string to_json(const SchedPerf& perf) {
  std::ostringstream out;
  out << "{"
      << "\"allocate_calls\":" << perf.allocate_calls << ","
      << "\"incremental_allocs\":" << perf.incremental_allocs << ","
      << "\"full_rebuilds\":" << perf.full_rebuilds << ","
      << "\"arrival_events\":" << perf.arrival_events << ","
      << "\"flow_finish_events\":" << perf.flow_finish_events << ","
      << "\"departure_events\":" << perf.departure_events << ","
      << "\"links_touched\":" << perf.links_touched << ","
      << "\"consistency_checks\":" << perf.consistency_checks << ","
      << "\"backfill_rounds\":" << perf.backfill_rounds << ","
      << "\"backfill_seconds\":" << perf.backfill_seconds << ","
      << "\"allocate_seconds\":" << perf.allocate_seconds << ","
      << "\"shard_regions\":" << perf.shard_regions << ","
      << "\"shard_busy_seconds\":" << perf.shard_busy_seconds << ","
      << "\"shard_critical_seconds\":" << perf.shard_critical_seconds
      << "}";
  return out.str();
}

void merge_sched_perf(obs::MetricsRegistry& registry, const SchedPerf& perf,
                      const std::string& prefix) {
  registry.counter(prefix + "allocate_calls").inc(perf.allocate_calls);
  registry.counter(prefix + "incremental_allocs")
      .inc(perf.incremental_allocs);
  registry.counter(prefix + "full_rebuilds").inc(perf.full_rebuilds);
  registry.counter(prefix + "arrival_events").inc(perf.arrival_events);
  registry.counter(prefix + "flow_finish_events")
      .inc(perf.flow_finish_events);
  registry.counter(prefix + "departure_events").inc(perf.departure_events);
  registry.counter(prefix + "links_touched").inc(perf.links_touched);
  registry.counter(prefix + "consistency_checks")
      .inc(perf.consistency_checks);
  registry.counter(prefix + "backfill_rounds").inc(perf.backfill_rounds);
  registry.gauge(prefix + "backfill_seconds")
      .set(registry.gauge(prefix + "backfill_seconds").value +
           perf.backfill_seconds);
  registry.gauge(prefix + "allocate_seconds")
      .set(registry.gauge(prefix + "allocate_seconds").value +
           perf.allocate_seconds);
  registry.counter(prefix + "shard_regions").inc(perf.shard_regions);
  registry.gauge(prefix + "shard_busy_seconds")
      .set(registry.gauge(prefix + "shard_busy_seconds").value +
           perf.shard_busy_seconds);
  registry.gauge(prefix + "shard_critical_seconds")
      .set(registry.gauge(prefix + "shard_critical_seconds").value +
           perf.shard_critical_seconds);
}

}  // namespace ncdrf
