// ScenarioSpec: one declarative bundle — workload, per-tenant strategies,
// fault script, policy, fabric — runnable on any execution plane.
//
// The spec is the portable unit of the scenario spine: the same JSON
// document drives the event-driven fluid simulator, the tick-driven
// master/slave deployment (with the fault plan), and the online serving
// front-end, so a gaming experiment or a regression is written once and
// cross-checked across planes. to_json/parse_scenario round-trip exactly
// (every field, full double precision), which is what lets specs live in
// version control and bench manifests.
//
// Plane semantics:
//   * run_on_sim       — simulate() over the transformed workload;
//   * run_on_serve     — ServeFront stepped at every arrival/completion
//     instant with an exact fluid data plane ("epoch=1": one admission
//     batch per event, rates integrated analytically between events, the
//     same event batching as the simulator) — the CCT-equivalence mode;
//   * run_on_deployment — run_deployment() with spec.faults (discrete
//     ticks, control latency; CCTs quantized to the tick).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/deployment.h"
#include "scenario/strategy.h"
#include "serve/loadgen.h"
#include "sim/sim.h"

namespace ncdrf::scenario {

struct ScenarioSpec {
  std::string name = "scenario";
  std::string policy = "ncdrf";
  double link_gbps = 1.0;  // homogeneous per-direction link capacity
  // Synthetic workload (machines and clients come from here).
  serve::LoadGenOptions workload;
  // Per-client strategy; clients absent from the map submit honestly.
  std::map<int, StrategySpec> strategies;
  // Timed fault script, consumed by the deployment plane only.
  FaultPlan faults;
};

std::string to_json(const ScenarioSpec& spec);
ScenarioSpec parse_scenario(const std::string& json);

Fabric make_fabric(const ScenarioSpec& spec);

// The spec's workload, honest and transformed, with evaluation metadata.
struct ScenarioWorkload {
  std::vector<std::vector<serve::Submission>> honest;
  TransformedWorkload transformed;
  // Submitting client per transformed coflow id.
  std::vector<int> tenant_of;
};

ScenarioWorkload build_workload(const ScenarioSpec& spec);

struct ScenarioRun {
  RunResult result;
  ScenarioWorkload workload;
};

ScenarioRun run_on_sim(const ScenarioSpec& spec);
ScenarioRun run_on_serve(const ScenarioSpec& spec);
DeploymentResult run_on_deployment(const ScenarioSpec& spec,
                                   const DeploymentOptions& options = {});

}  // namespace ncdrf::scenario
