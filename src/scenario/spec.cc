#include "scenario/spec.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/message.h"
#include "common/check.h"
#include "core/registry.h"
#include "fabric/fabric.h"
#include "scenario/source.h"
#include "serve/server.h"

namespace ncdrf::scenario {
namespace {

// ---------------------------------------------------------------------------
// JSON writer. Doubles print with %.17g so every value round-trips exactly;
// the reader below parses the same grammar, which is what makes
// parse_scenario(to_json(spec)) an identity.
// ---------------------------------------------------------------------------

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_field(std::string& out, const char* key, const std::string& value,
                  bool quoted) {
  if (out.back() != '{' && out.back() != '[') out += ',';
  append_quoted(out, key);
  out += ':';
  if (quoted) {
    append_quoted(out, value);
  } else {
    out += value;
  }
}

void append_workload(std::string& out, const serve::LoadGenOptions& w) {
  out += '{';
  append_field(out, "seed", std::to_string(w.seed), false);
  append_field(out, "num_clients", std::to_string(w.num_clients), false);
  append_field(out, "num_machines", std::to_string(w.num_machines), false);
  append_field(out, "arrival_rate_per_s", fmt(w.arrival_rate_per_s), false);
  append_field(out, "duration_s", fmt(w.duration_s), false);
  append_field(out, "min_flows_per_coflow",
               std::to_string(w.min_flows_per_coflow), false);
  append_field(out, "max_flows_per_coflow",
               std::to_string(w.max_flows_per_coflow), false);
  append_field(out, "mean_flow_bits", fmt(w.mean_flow_bits), false);
  append_field(out, "flow_size_sigma", fmt(w.flow_size_sigma), false);
  append_field(out, "burst_factor", fmt(w.burst_factor), false);
  append_field(out, "burst_duty", fmt(w.burst_duty), false);
  append_field(out, "burst_period_s", fmt(w.burst_period_s), false);
  append_field(out, "mean_lifetime_s", fmt(w.mean_lifetime_s), false);
  append_field(out, "sizes_known", w.sizes_known ? "true" : "false", false);
  append_field(out, "weight", fmt(w.weight), false);
  out += '}';
}

void append_strategy(std::string& out, const StrategySpec& s) {
  out += '{';
  append_field(out, "kind", s.kind, true);
  append_field(out, "k", std::to_string(s.k), false);
  append_field(out, "factor", std::to_string(s.factor), false);
  append_field(out, "pad", std::to_string(s.pad), false);
  append_field(out, "dust_bits", fmt(s.dust_bits), false);
  append_field(out, "period_s", fmt(s.period_s), false);
  append_field(out, "duty", fmt(s.duty), false);
  append_field(out, "seed", std::to_string(s.seed), false);
  out += '}';
}

void append_fault(std::string& out, const FaultEvent& e) {
  out += '{';
  append_field(out, "time", fmt(e.time), false);
  append_field(out, "kind", fault_kind_name(e.kind), true);
  append_field(out, "machine", std::to_string(e.machine), false);
  append_field(out, "loss_probability", fmt(e.loss_probability), false);
  out += '}';
}

// ---------------------------------------------------------------------------
// JSON reader: a strict recursive-descent parser over the spec schema.
// Unknown keys are errors — a typo in a checked-in spec should fail loudly,
// not silently fall back to a default.
// ---------------------------------------------------------------------------

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  char peek() {
    skip_ws();
    NCDRF_CHECK(pos_ < text_.size(), "scenario json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    NCDRF_CHECK(peek() == c,
                std::string("scenario json: expected '") + c + "' near offset " +
                    std::to_string(pos_));
    ++pos_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      NCDRF_CHECK(pos_ < text_.size(), "scenario json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        NCDRF_CHECK(pos_ < text_.size(), "scenario json: dangling escape");
        out += text_[pos_++];
      } else {
        out += c;
      }
    }
    return out;
  }

  double parse_double() { return std::strtod(number_token().c_str(), nullptr); }

  long long parse_int() {
    return std::strtoll(number_token().c_str(), nullptr, 10);
  }

  std::uint64_t parse_u64() {
    return std::strtoull(number_token().c_str(), nullptr, 10);
  }

  bool parse_bool() {
    if (peek() == 't') {
      literal("true");
      return true;
    }
    literal("false");
    return false;
  }

  // Parses `{"k1": <v>, ...}` calling on_key for each member with the
  // reader positioned at the value.
  void parse_object(const std::function<void(const std::string&)>& on_key) {
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      const std::string key = parse_string();
      expect(':');
      on_key(key);
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(const std::function<void()>& on_element) {
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      on_element();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  void finish() {
    skip_ws();
    NCDRF_CHECK(pos_ == text_.size(),
                "scenario json: trailing characters after the document");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  void literal(const char* word) {
    skip_ws();
    for (const char* p = word; *p != '\0'; ++p) {
      NCDRF_CHECK(pos_ < text_.size() && text_[pos_] == *p,
                  std::string("scenario json: expected literal ") + word);
      ++pos_;
    }
  }

  std::string number_token() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' ||
          c == '+' || c == '.' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    NCDRF_CHECK(pos_ > start, "scenario json: expected a number near offset " +
                                  std::to_string(start));
    return text_.substr(start, pos_ - start);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

serve::LoadGenOptions parse_workload(JsonReader& r) {
  serve::LoadGenOptions w;
  r.parse_object([&](const std::string& key) {
    if (key == "seed") {
      w.seed = r.parse_u64();
    } else if (key == "num_clients") {
      w.num_clients = static_cast<int>(r.parse_int());
    } else if (key == "num_machines") {
      w.num_machines = static_cast<int>(r.parse_int());
    } else if (key == "arrival_rate_per_s") {
      w.arrival_rate_per_s = r.parse_double();
    } else if (key == "duration_s") {
      w.duration_s = r.parse_double();
    } else if (key == "min_flows_per_coflow") {
      w.min_flows_per_coflow = static_cast<int>(r.parse_int());
    } else if (key == "max_flows_per_coflow") {
      w.max_flows_per_coflow = static_cast<int>(r.parse_int());
    } else if (key == "mean_flow_bits") {
      w.mean_flow_bits = r.parse_double();
    } else if (key == "flow_size_sigma") {
      w.flow_size_sigma = r.parse_double();
    } else if (key == "burst_factor") {
      w.burst_factor = r.parse_double();
    } else if (key == "burst_duty") {
      w.burst_duty = r.parse_double();
    } else if (key == "burst_period_s") {
      w.burst_period_s = r.parse_double();
    } else if (key == "mean_lifetime_s") {
      w.mean_lifetime_s = r.parse_double();
    } else if (key == "sizes_known") {
      w.sizes_known = r.parse_bool();
    } else if (key == "weight") {
      w.weight = r.parse_double();
    } else {
      NCDRF_CHECK(false, "scenario json: unknown workload key: " + key);
    }
  });
  return w;
}

StrategySpec parse_strategy(JsonReader& r) {
  StrategySpec s;
  r.parse_object([&](const std::string& key) {
    if (key == "kind") {
      s.kind = r.parse_string();
    } else if (key == "k") {
      s.k = static_cast<int>(r.parse_int());
    } else if (key == "factor") {
      s.factor = static_cast<int>(r.parse_int());
    } else if (key == "pad") {
      s.pad = static_cast<int>(r.parse_int());
    } else if (key == "dust_bits") {
      s.dust_bits = r.parse_double();
    } else if (key == "period_s") {
      s.period_s = r.parse_double();
    } else if (key == "duty") {
      s.duty = r.parse_double();
    } else if (key == "seed") {
      s.seed = r.parse_u64();
    } else {
      NCDRF_CHECK(false, "scenario json: unknown strategy key: " + key);
    }
  });
  return s;
}

FaultKind parse_fault_kind(const std::string& name) {
  static constexpr FaultKind kKinds[] = {
      FaultKind::kSlaveCrash,     FaultKind::kSlaveRestart,
      FaultKind::kMasterCrash,    FaultKind::kMasterRestart,
      FaultKind::kPartitionStart, FaultKind::kPartitionHeal,
      FaultKind::kLossBurstStart, FaultKind::kLossBurstEnd,
  };
  for (const FaultKind kind : kKinds) {
    if (name == fault_kind_name(kind)) return kind;
  }
  NCDRF_CHECK(false, "scenario json: unknown fault kind: " + name);
  return FaultKind::kSlaveCrash;
}

FaultEvent parse_fault(JsonReader& r) {
  FaultEvent e;
  r.parse_object([&](const std::string& key) {
    if (key == "time") {
      e.time = r.parse_double();
    } else if (key == "kind") {
      e.kind = parse_fault_kind(r.parse_string());
    } else if (key == "machine") {
      e.machine = static_cast<MachineId>(r.parse_int());
    } else if (key == "loss_probability") {
      e.loss_probability = r.parse_double();
    } else {
      NCDRF_CHECK(false, "scenario json: unknown fault key: " + key);
    }
  });
  return e;
}

}  // namespace

std::string to_json(const ScenarioSpec& spec) {
  std::string out = "{";
  append_field(out, "name", spec.name, true);
  append_field(out, "policy", spec.policy, true);
  append_field(out, "link_gbps", fmt(spec.link_gbps), false);
  append_field(out, "workload", "", false);  // empty value: writer continues
  append_workload(out, spec.workload);
  append_field(out, "strategies", "", false);
  out += '{';
  for (const auto& [client, strategy] : spec.strategies) {
    append_field(out, std::to_string(client).c_str(), "", false);
    append_strategy(out, strategy);
  }
  out += '}';
  append_field(out, "faults", "", false);
  out += '[';
  for (std::size_t i = 0; i < spec.faults.events().size(); ++i) {
    if (i > 0) out += ',';
    append_fault(out, spec.faults.events()[i]);
  }
  out += "]}";
  return out;
}

ScenarioSpec parse_scenario(const std::string& json) {
  ScenarioSpec spec;
  JsonReader r(json);
  r.parse_object([&](const std::string& key) {
    if (key == "name") {
      spec.name = r.parse_string();
    } else if (key == "policy") {
      spec.policy = r.parse_string();
    } else if (key == "link_gbps") {
      spec.link_gbps = r.parse_double();
    } else if (key == "workload") {
      spec.workload = parse_workload(r);
    } else if (key == "strategies") {
      r.parse_object([&](const std::string& client) {
        spec.strategies[static_cast<int>(
            std::strtoll(client.c_str(), nullptr, 10))] = parse_strategy(r);
      });
    } else if (key == "faults") {
      r.parse_array([&] { spec.faults.add(parse_fault(r)); });
    } else {
      NCDRF_CHECK(false, "scenario json: unknown spec key: " + key);
    }
  });
  r.finish();
  return spec;
}

Fabric make_fabric(const ScenarioSpec& spec) {
  NCDRF_CHECK(spec.link_gbps > 0.0, "scenario needs a positive link rate");
  return Fabric(spec.workload.num_machines, spec.link_gbps * 1e9);
}

ScenarioWorkload build_workload(const ScenarioSpec& spec) {
  ScenarioWorkload workload;
  workload.honest = serve::LoadGenerator(spec.workload).generate();
  std::vector<std::unique_ptr<TenantStrategy>> owned(workload.honest.size());
  std::vector<TenantStrategy*> strategies(workload.honest.size(), nullptr);
  for (const auto& [client, strategy_spec] : spec.strategies) {
    NCDRF_CHECK(client >= 0 &&
                    static_cast<std::size_t>(client) < workload.honest.size(),
                "scenario strategy for a client outside the workload");
    if (strategy_spec.kind == "honest") continue;  // null slot = pass-through
    owned[static_cast<std::size_t>(client)] = make_strategy(strategy_spec);
    strategies[static_cast<std::size_t>(client)] =
        owned[static_cast<std::size_t>(client)].get();
  }
  workload.transformed = apply_strategies(workload.honest, strategies,
                                          spec.workload.num_machines);
  std::size_t total = 0;
  for (const auto& schedule : workload.transformed.per_client) {
    total += schedule.size();
  }
  workload.tenant_of.assign(total, -1);
  for (const auto& schedule : workload.transformed.per_client) {
    for (const serve::Submission& s : schedule) {
      workload.tenant_of[static_cast<std::size_t>(s.coflow)] = s.client;
    }
  }
  return workload;
}

ScenarioRun run_on_sim(const ScenarioSpec& spec) {
  ScenarioRun run;
  run.workload = build_workload(spec);
  const Fabric fabric = make_fabric(spec);
  const std::unique_ptr<Scheduler> scheduler = make_scheduler(spec.policy);
  VectorSource source(run.workload.transformed.per_client,
                      spec.workload.num_machines);
  run.result = simulate(fabric, source, *scheduler);
  return run;
}

DeploymentResult run_on_deployment(const ScenarioSpec& spec,
                                   const DeploymentOptions& options) {
  ScenarioWorkload workload = build_workload(spec);
  const Fabric fabric = make_fabric(spec);
  const std::unique_ptr<Scheduler> scheduler = make_scheduler(spec.policy);
  DeploymentOptions opts = options;
  opts.faults = spec.faults;
  VectorSource source(std::move(workload.transformed.per_client),
                      spec.workload.num_machines);
  return run_deployment(fabric, source, *scheduler, opts);
}

// The serve plane's CCT-equivalence driver: an exact fluid data plane under
// the real front-end control plane. The loop mirrors src/sim/engine.cc event
// for event — allocate at every instant where the active set is non-empty
// (after retire + admit), integrate delivered = min(rate · dt, remaining)
// between instants, retire at the completion epsilon — so stateful policies
// (karma's credit clock) see the identical (now, view) sequence on both
// planes and the equivalence tolerance can be ulp-tight.
ScenarioRun run_on_serve(const ScenarioSpec& spec) {
  constexpr double kTimeTolerance = 1e-9;      // engine's admission slack
  constexpr double kCompletionEpsilonBits = 1.0;  // SimOptions default
  constexpr double kInfinity = std::numeric_limits<double>::infinity();

  ScenarioRun run;
  run.workload = build_workload(spec);
  const Fabric fabric = make_fabric(spec);
  const std::unique_ptr<Scheduler> scheduler = make_scheduler(spec.policy);

  serve::ServeOptions options;
  options.epoch_s = 1.0;           // nominal: epochs are event-aligned here
  options.max_batch_per_epoch = 0;  // admit everything due at the instant
  options.queue_capacity = std::numeric_limits<std::size_t>::max() / 4;
  options.slowdown_watermark = options.queue_capacity;
  options.shed_watermark = options.queue_capacity;
  serve::ServeFront front(fabric, *scheduler, spec.workload.num_clients,
                          options);

  // Arrival stream in global (time, client) order + dense-id ground truth.
  std::vector<serve::Submission> arrivals;
  {
    VectorSource source(run.workload.transformed.per_client,
                        spec.workload.num_machines);
    while (source.peek() != nullptr) arrivals.push_back(source.next());
  }
  std::size_t total_flows = 0;
  for (const serve::Submission& s : arrivals) total_flows += s.flows.size();

  RunResult& result = run.result;
  result.coflows.resize(arrivals.size());
  std::vector<double> remaining(total_flows, 0.0);
  std::vector<double> attained(total_flows, 0.0);
  std::vector<double> rate(total_flows, 0.0);
  std::vector<MachineId> src_of(total_flows, -1);
  std::vector<CoflowId> coflow_of(total_flows, -1);
  std::vector<int> unfinished(arrivals.size(), 0);
  std::vector<FlowId> live;

  std::size_t next_arrival = 0;
  double now = 0.0;
  std::vector<FlowFinishedMsg> finish_batch;
  std::vector<HeartbeatMsg> heartbeats(
      static_cast<std::size_t>(spec.workload.num_machines));
  for (MachineId m = 0; m < spec.workload.num_machines; ++m) {
    heartbeats[static_cast<std::size_t>(m)].machine = m;
  }

  const auto enqueue_due = [&] {
    while (next_arrival < arrivals.size() &&
           arrivals[next_arrival].submit_time <= now + kTimeTolerance) {
      serve::Submission s = arrivals[next_arrival++];
      s.sizes_known = scheduler->clairvoyant();
      s.lifetime_s = 0.0;  // completion-driven retirement only
      const auto c = static_cast<std::size_t>(s.coflow);
      CoflowRecord& rec = result.coflows[c];
      rec.id = s.coflow;
      rec.arrival = s.submit_time;
      rec.width = static_cast<int>(s.flows.size());
      std::vector<double> demand(
          static_cast<std::size_t>(fabric.num_links()), 0.0);
      for (const Flow& f : s.flows) {
        NCDRF_CHECK(f.size_bits > kCompletionEpsilonBits,
                    "serve equivalence driver needs flows above the "
                    "completion epsilon");
        const auto idx = static_cast<std::size_t>(f.id);
        remaining[idx] = f.size_bits;
        src_of[idx] = f.src;
        coflow_of[idx] = f.coflow;
        live.push_back(f.id);
        ++unfinished[c];
        rec.total_bits += f.size_bits;
        rec.max_flow_bits = std::max(rec.max_flow_bits, f.size_bits);
        demand[static_cast<std::size_t>(fabric.uplink(f.src))] += f.size_bits;
        demand[static_cast<std::size_t>(fabric.downlink(f.dst))] +=
            f.size_bits;
      }
      for (LinkId l = 0; l < fabric.num_links(); ++l) {
        rec.min_cct =
            std::max(rec.min_cct, demand[static_cast<std::size_t>(l)] /
                                      fabric.capacity(l));
      }
      NCDRF_CHECK(
          front.queue(s.client).try_enqueue(std::move(s)),
          "unbounded equivalence queue rejected a submission");
    }
  };

  enqueue_due();
  while (!live.empty() || next_arrival < arrivals.size() ||
         front.backlog() > 0) {
    if (live.empty() && front.backlog() == 0) {
      now = arrivals[next_arrival].submit_time;
      enqueue_due();
      continue;
    }

    // Allocate at `now`: exact attained via heartbeats (what the engine's
    // in-memory view gives clairvoyant policies), then one epoch step —
    // every instant here carries an arrival or a finish, so the master is
    // dirty and reallocates exactly once per event.
    for (HeartbeatMsg& hb : heartbeats) hb.attained_bits.clear();
    for (const FlowId f : live) {
      const auto idx = static_cast<std::size_t>(f);
      heartbeats[static_cast<std::size_t>(src_of[idx])].attained_bits
          .emplace_back(f, attained[idx]);
    }
    for (const HeartbeatMsg& hb : heartbeats) {
      front.master().on_heartbeat(hb, now);
    }
    front.step_epoch(now);
    const Allocation& alloc = front.last_allocation();
    for (const FlowId f : live) {
      rate[static_cast<std::size_t>(f)] = alloc.rate(f);
    }

    // Next event: earliest completion under these rates, or next arrival.
    double t_next = kInfinity;
    for (const FlowId f : live) {
      const auto idx = static_cast<std::size_t>(f);
      if (rate[idx] > 0.0) {
        t_next = std::min(t_next, now + remaining[idx] / rate[idx]);
      }
    }
    if (next_arrival < arrivals.size()) {
      t_next = std::min(t_next, arrivals[next_arrival].submit_time);
    }
    NCDRF_CHECK(std::isfinite(t_next),
                "starvation: no completion or arrival ahead under scheduler " +
                    scheduler->name());
    const double dt = std::max(t_next - now, 0.0);
    if (dt > 0.0) {
      for (const FlowId f : live) {
        const auto idx = static_cast<std::size_t>(f);
        if (rate[idx] > 0.0) {
          const double delivered = std::min(rate[idx] * dt, remaining[idx]);
          remaining[idx] -= delivered;
          attained[idx] += delivered;
          result.total_bits_delivered += delivered;
        }
      }
    }
    now += dt;
    ++result.num_events;

    // Retire flows at the completion epsilon; coflow completions land at
    // this instant, exactly like the engine's retire phase.
    finish_batch.clear();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      const FlowId f = live[i];
      const auto idx = static_cast<std::size_t>(f);
      if (remaining[idx] <= kCompletionEpsilonBits) {
        finish_batch.push_back(FlowFinishedMsg{f, coflow_of[idx], now});
        rate[idx] = 0.0;
        const auto c = static_cast<std::size_t>(coflow_of[idx]);
        if (--unfinished[c] == 0) {
          CoflowRecord& rec = result.coflows[c];
          rec.completion = now;
          rec.cct = now - rec.arrival;
          result.makespan = std::max(result.makespan, now);
        }
      } else {
        live[kept++] = f;
      }
    }
    live.resize(kept);
    if (!finish_batch.empty()) front.master().on_flows_finished(finish_batch);
    enqueue_due();
  }
  result.num_allocations = front.allocations();
  return run;
}

}  // namespace ncdrf::scenario
