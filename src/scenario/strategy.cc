#include "scenario/strategy.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <set>
#include <utility>

#include "common/check.h"
#include "scenario/source.h"

namespace ncdrf::scenario {
namespace {

// A strategic copy carries everything but the ids, which are restamped
// globally once every client's schedule is transformed.
serve::Submission shell_of(const serve::Submission& honest) {
  serve::Submission s = honest;
  s.coflow = -1;
  s.flows.clear();
  return s;
}

}  // namespace

void HonestStrategy::transform(const serve::Submission& honest,
                               int num_machines,
                               std::vector<serve::Submission>& out) {
  (void)num_machines;
  out.push_back(honest);
}

FlowSplitter::FlowSplitter(int k) : k_(k) {
  NCDRF_CHECK(k_ >= 1, "flow splitter needs k >= 1");
}

void FlowSplitter::transform(const serve::Submission& honest,
                             int num_machines,
                             std::vector<serve::Submission>& out) {
  (void)num_machines;
  for (int slice = 0; slice < k_; ++slice) {
    serve::Submission s = shell_of(honest);
    s.flows.reserve(honest.flows.size());
    for (const Flow& f : honest.flows) {
      Flow piece = f;
      piece.id = -1;
      piece.coflow = -1;
      piece.size_bits = f.size_bits / static_cast<double>(k_);
      s.flows.push_back(piece);
    }
    out.push_back(std::move(s));
  }
}

DemandInflator::DemandInflator(int factor) : factor_(factor) {
  NCDRF_CHECK(factor_ >= 1, "demand inflator needs factor >= 1");
}

void DemandInflator::transform(const serve::Submission& honest,
                               int num_machines,
                               std::vector<serve::Submission>& out) {
  (void)num_machines;
  serve::Submission s = shell_of(honest);
  s.flows.reserve(honest.flows.size() * static_cast<std::size_t>(factor_));
  for (const Flow& f : honest.flows) {
    for (int j = 0; j < factor_; ++j) {
      Flow piece = f;
      piece.id = -1;
      piece.coflow = -1;
      piece.size_bits = f.size_bits / static_cast<double>(factor_);
      s.flows.push_back(piece);
    }
  }
  out.push_back(std::move(s));
}

DustPadder::DustPadder(int pad, double dust_bits, std::uint64_t seed)
    : pad_(pad), dust_bits_(dust_bits), seed_(seed), rng_(seed) {
  NCDRF_CHECK(pad_ >= 1, "dust padder needs pad >= 1");
  NCDRF_CHECK(dust_bits_ > 0.0, "dust size must be positive");
}

void DustPadder::transform(const serve::Submission& honest, int num_machines,
                           std::vector<serve::Submission>& out) {
  serve::Submission s = honest;
  s.coflow = -1;
  for (Flow& f : s.flows) {
    f.id = -1;
    f.coflow = -1;
  }
  // The largest real flow donates the dust budget; padding shrinks so the
  // donor keeps at least half its bytes (totals always conserved).
  std::size_t donor = 0;
  for (std::size_t i = 1; i < s.flows.size(); ++i) {
    if (s.flows[i].size_bits > s.flows[donor].size_bits) donor = i;
  }
  const double budget =
      std::min(static_cast<double>(pad_) * dust_bits_,
               s.flows.empty() ? 0.0 : s.flows[donor].size_bits * 0.5);
  if (budget <= 0.0 || s.flows.empty() || num_machines < 2) {
    out.push_back(std::move(s));
    return;
  }
  const double per_dust = budget / static_cast<double>(pad_);
  // Prefer sources the coflow does not already send from: each new source
  // widens the correlation vector NC-DRF infers demand on.
  std::set<MachineId> used;
  for (const Flow& f : s.flows) used.insert(f.src);
  std::vector<MachineId> fresh;
  for (MachineId m = 0; m < num_machines; ++m) {
    if (!used.contains(m)) fresh.push_back(m);
  }
  for (int d = 0; d < pad_; ++d) {
    Flow dust;
    if (!fresh.empty()) {
      const auto pick = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(fresh.size()) - 1));
      dust.src = fresh[pick];
      fresh.erase(fresh.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      dust.src = static_cast<MachineId>(rng_.uniform_int(0, num_machines - 1));
    }
    do {
      dust.dst = static_cast<MachineId>(rng_.uniform_int(0, num_machines - 1));
    } while (dust.dst == dust.src);
    dust.size_bits = per_dust;
    s.flows[donor].size_bits -= per_dust;
    s.flows.push_back(dust);
  }
  NCDRF_CHECK(s.flows[donor].size_bits > 0.0, "dust budget drained the donor");
  out.push_back(std::move(s));
}

OnOffHoarder::OnOffHoarder(double period_s, double duty)
    : period_s_(period_s), duty_(duty) {
  NCDRF_CHECK(period_s_ > 0.0, "hoarder period must be positive");
  NCDRF_CHECK(duty_ > 0.0 && duty_ <= 1.0, "hoarder duty must be in (0, 1]");
}

void OnOffHoarder::transform(const serve::Submission& honest,
                             int num_machines,
                             std::vector<serve::Submission>& out) {
  (void)num_machines;
  serve::Submission s = honest;
  s.coflow = -1;
  for (Flow& f : s.flows) {
    f.id = -1;
    f.coflow = -1;
  }
  const double cycle = std::floor(honest.submit_time / period_s_);
  const double phase = honest.submit_time - cycle * period_s_;
  if (phase >= duty_ * period_s_) {
    // Off-window: hoard until the next on-window opens. Monotone in the
    // honest time, so the schedule stays sorted.
    s.submit_time = (cycle + 1.0) * period_s_;
  }
  out.push_back(std::move(s));
}

std::unique_ptr<TenantStrategy> make_strategy(const StrategySpec& spec) {
  if (spec.kind == "honest") return std::make_unique<HonestStrategy>();
  if (spec.kind == "flow-splitter") {
    return std::make_unique<FlowSplitter>(spec.k);
  }
  if (spec.kind == "demand-inflator") {
    return std::make_unique<DemandInflator>(spec.factor);
  }
  if (spec.kind == "dust-padder") {
    return std::make_unique<DustPadder>(spec.pad, spec.dust_bits, spec.seed);
  }
  if (spec.kind == "on-off-hoarder") {
    return std::make_unique<OnOffHoarder>(spec.period_s, spec.duty);
  }
  NCDRF_CHECK(false, "unknown tenant strategy: " + spec.kind);
  return nullptr;
}

TransformedWorkload apply_strategies(
    const std::vector<std::vector<serve::Submission>>& honest,
    const std::vector<TenantStrategy*>& strategies, int num_machines) {
  NCDRF_CHECK(strategies.size() == honest.size(),
              "one strategy slot per client (null = honest)");
  TransformedWorkload result;
  result.per_client.resize(honest.size());
  result.derived.resize(honest.size());
  // orig[c][j] = which honest submission the j-th transformed one derives
  // from; assign_dense_ids stamps ids in place without reordering, so the
  // mapping survives and the derived coflow ids can be read back after.
  std::vector<std::vector<std::size_t>> orig(honest.size());
  for (std::size_t c = 0; c < honest.size(); ++c) {
    TenantStrategy* strategy = strategies[c];
    if (strategy != nullptr) strategy->reset();
    auto& sched = result.per_client[c];
    for (std::size_t i = 0; i < honest[c].size(); ++i) {
      const std::size_t before = sched.size();
      if (strategy != nullptr) {
        strategy->transform(honest[c][i], num_machines, sched);
      } else {
        sched.push_back(honest[c][i]);
      }
      NCDRF_CHECK(sched.size() > before,
                  "a strategy must emit at least one submission");
      for (std::size_t j = before; j < sched.size(); ++j) {
        NCDRF_CHECK(sched[j].submit_time >= honest[c][i].submit_time,
                    "strategies cannot submit before the honest time");
        NCDRF_CHECK(j == 0 ||
                        sched[j].submit_time >= sched[j - 1].submit_time,
                    "strategy broke the client's time order");
        orig[c].push_back(i);
      }
    }
    result.derived[c].assign(honest[c].size(), {});
  }
  assign_dense_ids(result.per_client);
  for (std::size_t c = 0; c < honest.size(); ++c) {
    for (std::size_t j = 0; j < result.per_client[c].size(); ++j) {
      result.derived[c][orig[c][j]].push_back(result.per_client[c][j].coflow);
    }
  }
  return result;
}

}  // namespace ncdrf::scenario
