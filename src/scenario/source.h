// WorkloadSource: the one arrival stream every execution plane consumes.
//
// Before this spine existed the repo had three divergent workload paths:
// the simulator iterated Trace::coflows, the cluster deployment driver
// replayed its own arrival loop over the same Trace, and the serving
// front-end pulled per-client LoadGenerator schedules — so any
// cross-cutting workload concern (tenant attribution, strategic-tenant
// rewrites, dense id assignment) had to be bolted onto each plane
// separately. A WorkloadSource is a pull-based stream of timestamped
// serve::Submission records with client attribution; DynamicSimulator,
// cluster::run_deployment and serve::ServeFront all consume it, and the
// adapters here wrap the legacy inputs (static Trace, the synthetic
// generators via their Trace output, per-client Submission schedules).
//
// Stream contract (what the planes rely on):
//   * submissions come out in nondecreasing (submit_time, client) order;
//   * coflow ids are dense [0, N) in exactly that order, flow ids are
//     dense [0, F) in the same global order (flows within a submission
//     consecutive) — the flat-array id contract TraceBuilder enforces;
//   * every flow carries its real size_bits > 0 (ground truth; drivers
//     strip sizes for non-clairvoyant policies), and flow.coflow equals
//     the submission's coflow id.
//
// assign_dense_ids() is the single id-assignment code path behind that
// contract: LoadGenerator::generate() stamps its per-client schedules
// with it, and materialize() turns any source back into a Trace through
// TraceBuilder (whose (arrival, insertion order) stable sort preserves
// the pull order, so ids round-trip unchanged).
//
// Everything in this header is header-only on purpose: sim, cluster and
// serve can consume the interface without a link-time dependency on the
// scenario library (which owns the strategy transformers and ScenarioSpec
// and *does* link against serve/sim/cluster).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "serve/submission_queue.h"
#include "trace/trace.h"

namespace ncdrf::scenario {

class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  // Machine count the endpoints are valid against (>= 1).
  virtual int num_machines() const = 0;

  // The next submission in stream order without consuming it; nullptr
  // when the source is exhausted. The pointer stays valid until the next
  // next() call.
  virtual const serve::Submission* peek() = 0;

  // Consumes and returns the next submission. Requires peek() != nullptr.
  virtual serve::Submission next() = 0;

  bool exhausted() { return peek() == nullptr; }
};

// Stamps dense coflow and flow ids over per-client schedules in global
// (submit_time, client) order — the same order TraceBuilder sorts into,
// so ids survive a round trip through materialize(). Each schedule must
// already be time-sorted; ids are stamped in place (vector layout is
// untouched). Returns the total number of coflows.
inline int assign_dense_ids(std::vector<std::vector<serve::Submission>>& per_client) {
  struct Slot {
    double time;
    int client;
    std::size_t index;
  };
  std::vector<Slot> order;
  for (std::size_t client = 0; client < per_client.size(); ++client) {
    const auto& sched = per_client[client];
    for (std::size_t i = 0; i < sched.size(); ++i) {
      NCDRF_CHECK(i == 0 || sched[i].submit_time >= sched[i - 1].submit_time,
                  "per-client schedule not time-sorted");
      order.push_back(Slot{sched[i].submit_time, static_cast<int>(client), i});
    }
  }
  std::sort(order.begin(), order.end(), [](const Slot& a, const Slot& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.client < b.client;  // per-client indices already time-ordered
  });
  CoflowId next_coflow = 0;
  FlowId next_flow = 0;
  for (const Slot& slot : order) {
    serve::Submission& s =
        per_client[static_cast<std::size_t>(slot.client)][slot.index];
    s.coflow = next_coflow++;
    for (Flow& f : s.flows) {
      f.id = next_flow++;
      f.coflow = s.coflow;
    }
  }
  return static_cast<int>(next_coflow);
}

// Adapts a static Trace (hand-built, synthetic generators, or a
// materialized source) to the stream interface. Owns the trace. The
// submission's client is the coflow's tenant; sizes ride along in full
// (`sizes_known` controls only the flag drivers read when registering).
class TraceSource : public WorkloadSource {
 public:
  // Owning: moves the trace in.
  explicit TraceSource(Trace trace, bool sizes_known = false)
      : owned_(std::move(trace)), trace_(&owned_), sizes_known_(sizes_known) {
    NCDRF_CHECK(trace_->num_machines >= 1, "trace source needs machines");
  }

  // Non-owning view: the trace must outlive the source (the hot path for
  // simulate(fabric, trace, ...) over large benchmark traces).
  explicit TraceSource(const Trace* trace, bool sizes_known = false)
      : trace_(trace), sizes_known_(sizes_known) {
    NCDRF_CHECK(trace_ != nullptr && trace_->num_machines >= 1,
                "trace source needs machines");
  }

  int num_machines() const override { return trace_->num_machines; }

  const serve::Submission* peek() override {
    if (next_ >= trace_->coflows.size()) return nullptr;
    if (!staged_) {
      const Coflow& c = trace_->coflows[next_];
      current_ = serve::Submission{};
      current_.coflow = c.id();
      current_.client = c.tenant();
      current_.submit_time = c.arrival_time();
      current_.weight = c.weight();
      current_.sizes_known = sizes_known_;
      current_.flows = c.flows();
      staged_ = true;
    }
    return &current_;
  }

  serve::Submission next() override {
    NCDRF_CHECK(peek() != nullptr, "next() on an exhausted source");
    staged_ = false;
    ++next_;
    return std::move(current_);
  }

  const Trace& trace() const { return *trace_; }

 private:
  Trace owned_;
  const Trace* trace_ = nullptr;
  bool sizes_known_ = false;
  std::size_t next_ = 0;
  bool staged_ = false;
  serve::Submission current_;
};

// Adapts per-client Submission schedules (LoadGenerator::generate output
// or hand-built) by merging them into global (submit_time, client) order.
// Schedules must carry dense ids (assign_dense_ids) in that order.
class VectorSource : public WorkloadSource {
 public:
  VectorSource(std::vector<std::vector<serve::Submission>> per_client,
               int num_machines)
      : per_client_(std::move(per_client)),
        cursor_(per_client_.size(), 0),
        num_machines_(num_machines) {
    NCDRF_CHECK(num_machines_ >= 1, "vector source needs machines");
  }

  int num_machines() const override { return num_machines_; }

  const serve::Submission* peek() override {
    const serve::Submission* best = nullptr;
    for (std::size_t c = 0; c < per_client_.size(); ++c) {
      if (cursor_[c] >= per_client_[c].size()) continue;
      const serve::Submission& s = per_client_[c][cursor_[c]];
      if (best == nullptr || s.submit_time < best->submit_time ||
          (s.submit_time == best->submit_time && s.client < best->client)) {
        best = &s;
        head_ = c;
      }
    }
    return best;
  }

  serve::Submission next() override {
    NCDRF_CHECK(peek() != nullptr, "next() on an exhausted source");
    return std::move(per_client_[head_][cursor_[head_]++]);
  }

 private:
  std::vector<std::vector<serve::Submission>> per_client_;
  std::vector<std::size_t> cursor_;
  std::size_t head_ = 0;
  int num_machines_ = 1;
};

// Drains `source` into a Trace through TraceBuilder — the one id
// assigner. Pull order is (submit_time, client), which the builder's
// stable (arrival, insertion order) sort preserves, so a source already
// carrying dense ids gets the identical ids back.
inline Trace materialize(WorkloadSource& source) {
  TraceBuilder builder(source.num_machines());
  while (const serve::Submission* s = source.peek()) {
    builder.begin_coflow(s->submit_time, s->weight, s->client);
    for (const Flow& f : s->flows) {
      builder.add_flow(f.src, f.dst, f.size_bits);
    }
    source.next();
  }
  return builder.build();
}

}  // namespace ncdrf::scenario
