// Scenario evaluation: the fairness / efficiency / incentive metrics the
// gaming bench and the scenario tests read off a run.
//
// Conventions:
//   * slowdown of a coflow = cct / min_cct (>= 1 for a correct run; the
//     paper's shuffle-slowdown denominator);
//   * short-term fairness = Jain's index over per-coflow inverse
//     slowdowns, long-term fairness = Jain over per-tenant inverse mean
//     slowdowns (a policy can be per-coflow fair yet starve a tenant, and
//     vice versa);
//   * welfare = Σ_t log(1 / mean slowdown_t) — the proportional-fairness
//     objective over tenants (0 when every tenant runs interference-free,
//     more negative as tenants are slowed);
//   * strategy gain = (attacker's mean honest-submission CCT when honest)
//     / (same, when strategic). > 1 means the manipulation paid off.
#pragma once

#include <vector>

#include "fabric/fabric.h"
#include "serve/submission_queue.h"
#include "sim/sim.h"

namespace ncdrf::scenario {

// Jain's fairness index: (Σx)² / (n · Σx²), in (0, 1]; 1 = all equal.
// Requires non-negative values; returns 1.0 for empty or all-zero input.
double jain_index(const std::vector<double>& xs);

struct TenantOutcome {
  int tenant = -1;
  int coflows = 0;
  double total_bits = 0.0;
  double mean_cct = 0.0;
  double mean_slowdown = 0.0;
};

// Per-tenant aggregation of a run's coflow records. `tenant_of` is
// indexed by coflow id; tenants come back sorted ascending.
std::vector<TenantOutcome> per_tenant(const RunResult& result,
                                      const std::vector<int>& tenant_of);

// Delivered bits over the fabric's aggregate egress capacity × makespan,
// in [0, 1]. Zero-makespan runs report 0.
double utilization(const Fabric& fabric, const RunResult& result);

// Jain over per-coflow inverse slowdowns (short-term fairness).
double coflow_fairness(const RunResult& result);

// Jain over per-tenant inverse mean slowdowns (long-term fairness).
double tenant_fairness(const std::vector<TenantOutcome>& tenants);

// Σ_t log(1 / mean slowdown_t), the proportional-fairness welfare.
double log_welfare(const std::vector<TenantOutcome>& tenants);

// Mean CCT of one client's *honest* submissions under a (possibly
// transformed) run: honest submission i completes when the last of its
// derived coflows does; its CCT is that completion minus the honest
// submit time. `derived[i]` holds submission i's derived coflow ids in
// the run's id space (identity for an honest run).
double mean_derived_cct(const RunResult& result,
                        const std::vector<serve::Submission>& honest_sched,
                        const std::vector<std::vector<CoflowId>>& derived);

}  // namespace ncdrf::scenario
