// TenantStrategy: composable strategic-tenant transformers over the
// workload spine.
//
// A strategy rewrites one tenant's *honest* submission stream into the
// stream a self-interested tenant would actually submit, modelling the
// manipulation channels the paper's Sec. III gaming analysis opens:
// splitting demand across more coflows or flows (defeats per-coflow and
// per-flow accounting), padding dust flows onto extra endpoints (inflates
// NC-DRF's inferred correlation vector), and hoarding submissions into
// bursts (games epoch-fair policies). Every transformer conserves
// ground-truth bytes — the tenant still has the same data to move; only
// its *presentation* changes — and is deterministic per seed, so a
// strategic run is exactly reproducible.
//
// Transformed schedules are restamped with assign_dense_ids before being
// fed to a plane; strategies therefore never assign ids themselves and
// only need to keep each client's schedule time-sorted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/submission_queue.h"

namespace ncdrf::scenario {

class TenantStrategy {
 public:
  virtual ~TenantStrategy() = default;

  virtual std::string name() const = 0;

  // Rewrites one honest submission into one or more strategic ones,
  // appended to `out` in nondecreasing submit_time order (each at or
  // after the honest submit_time, so a per-submission application keeps
  // the client's schedule time-sorted). Total flow bytes are conserved.
  // `num_machines` bounds any endpoints the strategy invents.
  virtual void transform(const serve::Submission& honest, int num_machines,
                         std::vector<serve::Submission>& out) = 0;

  // Restores construction state (reseeds), so the same instance replays
  // identically across runs.
  virtual void reset() = 0;
};

// Pass-through: the honest tenant.
class HonestStrategy : public TenantStrategy {
 public:
  std::string name() const override { return "honest"; }
  void transform(const serve::Submission& honest, int num_machines,
                 std::vector<serve::Submission>& out) override;
  void reset() override {}
};

// Splits each coflow into `k` sibling coflows, each carrying a 1/k slice
// of every flow (same endpoints, same submit time). Against per-coflow
// fair policies (NC-DRF) the tenant now holds k claims instead of one.
class FlowSplitter : public TenantStrategy {
 public:
  explicit FlowSplitter(int k);
  std::string name() const override { return "flow-splitter"; }
  void transform(const serve::Submission& honest, int num_machines,
                 std::vector<serve::Submission>& out) override;
  void reset() override {}

 private:
  int k_;
};

// Replaces each flow with `factor` same-endpoint subflows of 1/factor
// the size, within one coflow. Inflates the flow counts NC-DRF infers
// demand from and multiplies the tenant's claims under per-flow fairness.
class DemandInflator : public TenantStrategy {
 public:
  explicit DemandInflator(int factor);
  std::string name() const override { return "demand-inflator"; }
  void transform(const serve::Submission& honest, int num_machines,
                 std::vector<serve::Submission>& out) override;
  void reset() override {}

 private:
  int factor_;
};

// Pads `pad` dust flows onto seeded-random endpoints the coflow does not
// already touch, widening the inferred correlation vector; the dust bytes
// are carved out of the coflow's largest flow so totals are conserved
// (padding shrinks when the largest flow is too small to donate).
class DustPadder : public TenantStrategy {
 public:
  DustPadder(int pad, double dust_bits, std::uint64_t seed);
  std::string name() const override { return "dust-padder"; }
  void transform(const serve::Submission& honest, int num_machines,
                 std::vector<serve::Submission>& out) override;
  void reset() override { rng_ = Rng(seed_); }

 private:
  int pad_;
  double dust_bits_;
  std::uint64_t seed_;
  Rng rng_;
};

// Withholds submissions that fall in the off-window of a duty cycle and
// releases them at the next on-window start — the hoarder that goes dark
// to bank priority/credit and then bursts. The time mapping is monotone,
// so per-client schedules stay sorted.
class OnOffHoarder : public TenantStrategy {
 public:
  OnOffHoarder(double period_s, double duty);
  std::string name() const override { return "on-off-hoarder"; }
  void transform(const serve::Submission& honest, int num_machines,
                 std::vector<serve::Submission>& out) override;
  void reset() override {}

 private:
  double period_s_;
  double duty_;
};

// Declarative strategy selector (the per-tenant entry of a ScenarioSpec).
// `kind` picks the transformer; the other fields parameterize it and are
// ignored when unused by the kind.
struct StrategySpec {
  std::string kind = "honest";  // honest | flow-splitter | demand-inflator
                                // | dust-padder | on-off-hoarder
  int k = 4;                    // flow-splitter
  int factor = 4;               // demand-inflator
  int pad = 4;                  // dust-padder: dust flows per coflow
  double dust_bits = 8e3;       // dust-padder: bits per dust flow
  double period_s = 20.0;       // on-off-hoarder
  double duty = 0.5;            // on-off-hoarder: fraction of period on
  std::uint64_t seed = 1;       // seeded strategies only
};

std::unique_ptr<TenantStrategy> make_strategy(const StrategySpec& spec);

// Applies per-client strategies to honest per-client schedules and
// restamps dense ids. strategies[c] may be null (honest). Returns the
// transformed schedules plus, per client, each honest submission's list
// of derived coflow ids (for strategy-gain evaluation: the strategic run
// "completes" an honest submission when all its derived coflows do).
struct TransformedWorkload {
  std::vector<std::vector<serve::Submission>> per_client;
  // derived[c][i] = coflow ids the c-th client's i-th honest submission
  // became, in the transformed stream's dense id space.
  std::vector<std::vector<std::vector<CoflowId>>> derived;
};

TransformedWorkload apply_strategies(
    const std::vector<std::vector<serve::Submission>>& honest,
    const std::vector<TenantStrategy*>& strategies, int num_machines);

}  // namespace ncdrf::scenario
