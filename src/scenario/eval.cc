#include "scenario/eval.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>

#include "common/check.h"

namespace ncdrf::scenario {

double jain_index(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : xs) {
    NCDRF_CHECK(x >= 0.0, "jain index needs non-negative values");
    sum += x;
    sum_sq += x * x;
  }
  if (xs.empty() || sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

std::vector<TenantOutcome> per_tenant(const RunResult& result,
                                      const std::vector<int>& tenant_of) {
  std::map<int, TenantOutcome> by_tenant;
  for (const CoflowRecord& rec : result.coflows) {
    NCDRF_CHECK(rec.id >= 0 && static_cast<std::size_t>(rec.id) <
                                   tenant_of.size(),
                "coflow id outside the tenant map");
    TenantOutcome& t = by_tenant[tenant_of[static_cast<std::size_t>(rec.id)]];
    t.tenant = tenant_of[static_cast<std::size_t>(rec.id)];
    ++t.coflows;
    t.total_bits += rec.total_bits;
    t.mean_cct += rec.cct;
    t.mean_slowdown += rec.min_cct > 0.0 ? rec.cct / rec.min_cct : 1.0;
  }
  std::vector<TenantOutcome> out;
  out.reserve(by_tenant.size());
  for (auto& [tenant, t] : by_tenant) {
    (void)tenant;
    t.mean_cct /= static_cast<double>(t.coflows);
    t.mean_slowdown /= static_cast<double>(t.coflows);
    out.push_back(t);
  }
  return out;
}

double utilization(const Fabric& fabric, const RunResult& result) {
  if (result.makespan <= 0.0) return 0.0;
  double egress = 0.0;
  for (MachineId m = 0; m < fabric.num_machines(); ++m) {
    egress += fabric.capacity(fabric.uplink(m));
  }
  return result.total_bits_delivered / (egress * result.makespan);
}

double coflow_fairness(const RunResult& result) {
  std::vector<double> inv;
  inv.reserve(result.coflows.size());
  for (const CoflowRecord& rec : result.coflows) {
    const double slowdown = rec.min_cct > 0.0 ? rec.cct / rec.min_cct : 1.0;
    inv.push_back(slowdown > 0.0 ? 1.0 / slowdown : 0.0);
  }
  return jain_index(inv);
}

double tenant_fairness(const std::vector<TenantOutcome>& tenants) {
  std::vector<double> inv;
  inv.reserve(tenants.size());
  for (const TenantOutcome& t : tenants) {
    inv.push_back(t.mean_slowdown > 0.0 ? 1.0 / t.mean_slowdown : 0.0);
  }
  return jain_index(inv);
}

double log_welfare(const std::vector<TenantOutcome>& tenants) {
  double welfare = 0.0;
  for (const TenantOutcome& t : tenants) {
    NCDRF_CHECK(t.mean_slowdown > 0.0, "welfare needs positive slowdowns");
    welfare -= std::log(t.mean_slowdown);
  }
  return welfare;
}

double mean_derived_cct(const RunResult& result,
                        const std::vector<serve::Submission>& honest_sched,
                        const std::vector<std::vector<CoflowId>>& derived) {
  NCDRF_CHECK(derived.size() == honest_sched.size(),
              "one derived-coflow list per honest submission");
  if (honest_sched.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < honest_sched.size(); ++i) {
    NCDRF_CHECK(!derived[i].empty(), "honest submission with no derived ids");
    double completion = 0.0;
    for (const CoflowId id : derived[i]) {
      NCDRF_CHECK(id >= 0 && static_cast<std::size_t>(id) <
                                 result.coflows.size(),
                  "derived coflow id outside the run");
      completion = std::max(
          completion, result.coflows[static_cast<std::size_t>(id)].completion);
    }
    sum += completion - honest_sched[i].submit_time;
  }
  return sum / static_cast<double>(honest_sched.size());
}

}  // namespace ncdrf::scenario
